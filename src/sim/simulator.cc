#include "sim/simulator.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/serializer.hh"
#include "ckpt/snapshot.hh"
#include "common/fingerprint.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/stats_json.hh"

namespace rmt
{

const char *
modeName(SimMode mode)
{
    switch (mode) {
      case SimMode::Base:     return "base";
      case SimMode::Base2:    return "base2";
      case SimMode::Srt:      return "srt";
      case SimMode::Lockstep: return "lockstep";
      case SimMode::Crt:      return "crt";
    }
    return "?";
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Completed:             return "completed";
      case Outcome::Hang:                  return "hang";
      case Outcome::DetectedUnrecoverable: return "detected_unrecoverable";
      case Outcome::CapExceeded:           return "cap_exceeded";
    }
    return "?";
}

namespace
{

const char *
frontendName(TrailingFetchMode mode)
{
    switch (mode) {
      case TrailingFetchMode::LinePredictionQueue: return "lpq";
      case TrailingFetchMode::BranchOutcomeQueue:  return "boq";
      case TrailingFetchMode::SharedLinePredictor: return "sharedlp";
    }
    return "?";
}

SmtParams
coreParams(const SimOptions &opts)
{
    SmtParams p = opts.cpu;
    p.per_thread_store_queues = opts.per_thread_store_queues;
    p.srt_store_comparison = opts.store_comparison;
    p.preferential_space_redundancy = opts.preferential_space_redundancy;
    p.trailing_fetch = opts.trailing_fetch;
    p.slack_fetch = opts.slack_fetch;
    p.lvq_ecc = opts.lvq_ecc;
    p.merge_buffer_ecc = opts.merge_buffer_ecc;
    p.cosim = opts.cosim;
    // The simulation-level watchdog must fire before the core's
    // process-killing deadlock backstop so a hang becomes a structured
    // verdict, not a panic.
    if (opts.hang_cycles) {
        p.deadlock_cycles = std::max<std::uint64_t>(p.deadlock_cycles,
                                                    opts.hang_cycles +
                                                        10000);
    }
    return p;
}

} // namespace

Simulation::Simulation(const std::vector<std::string> &workload_names,
                       const SimOptions &options)
    : opts(options)
{
    WallTimer build_timer;
    if (workload_names.empty())
        fatal("Simulation needs at least one workload");
    if (opts.snapshot_every) {
        // Snapshots capture timing state only; the cosim reference model
        // and the recovery engine's checkpoint log are not serialized.
        if (opts.cosim)
            fatal("snapshots are incompatible with cosim");
        if (opts.recovery)
            fatal("snapshots are incompatible with recovery");
    }

    for (const auto &name : workload_names) {
        workloads.push_back(buildWorkload(name));
        memories.push_back(workloads.back().makeMemory());
    }
    placements.resize(workloads.size());

    switch (opts.mode) {
      case SimMode::Base:
        buildBase(false);
        break;
      case SimMode::Base2:
        buildBase(true);
        break;
      case SimMode::Lockstep:
        // Lockstep timing equals the base processor with the checker
        // penalty applied to every off-core signal: L1-miss service and
        // the store-release path (Section 6.3; Lock0 == Base exactly).
        buildBase(false);
        break;
      case SimMode::Srt:
        buildSrt();
        break;
      case SimMode::Crt:
        buildCrt();
        break;
    }

    FaultMachineShape shape;
    shape.cores = _chip->numCores();
    shape.threads = _chip->cpu(0).numThreads();
    shape.pairs = static_cast<unsigned>(_chip->redundancy().numPairs());
    shape.int_units_per_half = opts.cpu.int_units_per_half;
    shape.logic_units_per_half = opts.cpu.logic_units_per_half;
    shape.mem_units_per_half = opts.cpu.mem_units_per_half;
    shape.fp_units_per_half = opts.cpu.fp_units_per_half;
    injector.configure(shape);

    if (opts.timeline_interval > 0) {
        TimelineConfig tc;
        tc.interval = opts.timeline_interval;
        tc.max_samples = opts.timeline_max_samples;
        probe = std::make_unique<TimelineProbe>(tc);
        _chip->setTimelineProbe(probe.get());
    }
    buildSeconds = build_timer.elapsed();
}

void
Simulation::buildBase(bool base2)
{
    const unsigned copies = base2 ? 2 : 1;
    const unsigned hw_threads =
        static_cast<unsigned>(workloads.size()) * copies;
    if (hw_threads > 4)
        fatal("base mode: at most 4 hardware threads");

    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu = coreParams(opts);
    cp.cpu.num_threads = hw_threads;
    cp.mem = opts.mem;
    if (opts.mode == SimMode::Lockstep) {
        cp.mem.checker_penalty = opts.checker_penalty;
        cp.cpu.store_checker_penalty = opts.checker_penalty;
    }
    _chip = std::make_unique<Chip>(cp);
    _chip->setFaultInjector(&injector);

    ThreadId tid = 0;
    for (unsigned i = 0; i < workloads.size(); ++i) {
        placements[i].lead_core = 0;
        placements[i].lead_tid = tid;
        placements[i].trail_core = 0;
        placements[i].trail_tid = tid;
        _chip->cpu(0).addThread(tid, workloads[i].program, *memories[i],
                                static_cast<LogicalId>(i), Role::Single);
        _chip->cpu(0).setTarget(tid, opts.warmup_insts + opts.measure_insts,
                                opts.warmup_insts);
        ++tid;
        if (base2) {
            // Second uncoupled copy: same program, same logical address
            // space (so it shares cache lines like a redundant copy),
            // but its own functional data image.
            copyMemories.push_back(workloads[i].makeMemory());
            _chip->cpu(0).addThread(tid, workloads[i].program,
                                    *copyMemories.back(),
                                    static_cast<LogicalId>(i),
                                    Role::IndependentCopy);
            _chip->cpu(0).setTarget(tid,
                                    opts.warmup_insts + opts.measure_insts,
                                    opts.warmup_insts);
            ++tid;
        }
    }
}

void
Simulation::buildSrt()
{
    const unsigned hw_threads =
        static_cast<unsigned>(workloads.size()) * 2;
    if (hw_threads > 4)
        fatal("SRT mode: at most 2 logical threads (4 contexts)");

    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu = coreParams(opts);
    cp.cpu.num_threads = hw_threads;
    cp.mem = opts.mem;
    _chip = std::make_unique<Chip>(cp);
    _chip->setFaultInjector(&injector);

    for (unsigned i = 0; i < workloads.size(); ++i) {
        const auto lead_tid = static_cast<ThreadId>(2 * i);
        const auto trail_tid = static_cast<ThreadId>(2 * i + 1);

        RedundantPairParams pp;
        pp.logical = static_cast<LogicalId>(i);
        pp.leading = HwThread{0, lead_tid};
        pp.trailing = HwThread{0, trail_tid};
        pp.lvq_entries = cp.cpu.lvq_entries;
        pp.lpq_entries = cp.cpu.lpq_entries;
        pp.lvq_ecc = cp.cpu.lvq_ecc;
        pp.lpq_ecc = opts.lpq_ecc;
        pp.boq_ecc = opts.boq_ecc;
        pp.forward_latency_lpq = cp.cpu.lpq_forward_latency;
        pp.forward_latency_lvq = cp.cpu.lvq_forward_latency;
        pp.cross_core_latency = 0;
        RedundantPair &pair = _chip->redundancy().addPair(pp);
        pair.memory = memories[i].get();
        if (opts.recovery) {
            if (opts.cosim)
                fatal("recovery is incompatible with cosim");
            pair.recovery = std::make_unique<RecoveryManager>(
                opts.recovery_params, workloads[i].program.entry(),
                "pair" + std::to_string(i) + ".recovery");
        }

        SmtCpu &cpu = _chip->cpu(0);
        cpu.addThread(lead_tid, workloads[i].program, *memories[i],
                      static_cast<LogicalId>(i), Role::Leading, &pair);
        cpu.addThread(trail_tid, workloads[i].program, *memories[i],
                      static_cast<LogicalId>(i), Role::Trailing, &pair);
        const std::uint64_t total =
            opts.warmup_insts + opts.measure_insts;
        cpu.setTarget(lead_tid, total, opts.warmup_insts);
        cpu.setTarget(trail_tid, total, opts.warmup_insts);

        placements[i] = Placement{0, lead_tid, 0, trail_tid, true};
    }
}

void
Simulation::buildCrt()
{
    const unsigned n = static_cast<unsigned>(workloads.size());
    if (n > 4)
        fatal("CRT mode: at most 4 logical threads");

    ChipParams cp;
    cp.num_cores = 2;
    cp.cpu = coreParams(opts);
    // Each core runs ceil(n/2) leading + floor-or-so trailing contexts.
    cp.cpu.num_threads = std::max(2u, ((n + 1) / 2) * 2);
    cp.mem = opts.mem;
    _chip = std::make_unique<Chip>(cp);
    _chip->setFaultInjector(&injector);

    // Cross-coupling (Figure 5): program i leads on core i%2 and trails
    // on the other core, so each core pairs the resource-light trailing
    // thread of one program with the leading thread of another.
    std::array<ThreadId, 2> next_lead{0, 0};
    std::array<ThreadId, 2> next_trail{0, 0};
    // Leading contexts occupy the low tids on each core.
    const unsigned leads_per_core = (n + 1) / 2;

    for (unsigned i = 0; i < n; ++i) {
        const CoreId lead_core = static_cast<CoreId>(i % 2);
        const CoreId trail_core = static_cast<CoreId>(1 - i % 2);
        const ThreadId lead_tid = next_lead[lead_core]++;
        const ThreadId trail_tid = static_cast<ThreadId>(
            leads_per_core + next_trail[trail_core]++);

        RedundantPairParams pp;
        pp.logical = static_cast<LogicalId>(i);
        pp.leading = HwThread{lead_core, lead_tid};
        pp.trailing = HwThread{trail_core, trail_tid};
        pp.lvq_entries = cp.cpu.lvq_entries;
        pp.lpq_entries = cp.cpu.lpq_entries;
        pp.lvq_ecc = cp.cpu.lvq_ecc;
        pp.lpq_ecc = opts.lpq_ecc;
        pp.boq_ecc = opts.boq_ecc;
        pp.forward_latency_lpq = cp.cpu.lpq_forward_latency;
        pp.forward_latency_lvq = cp.cpu.lvq_forward_latency;
        pp.cross_core_latency = cp.cpu.cross_core_latency;
        RedundantPair &pair = _chip->redundancy().addPair(pp);
        pair.memory = memories[i].get();
        if (opts.recovery) {
            if (opts.cosim)
                fatal("recovery is incompatible with cosim");
            pair.recovery = std::make_unique<RecoveryManager>(
                opts.recovery_params, workloads[i].program.entry(),
                "pair" + std::to_string(i) + ".recovery");
        }

        const std::uint64_t total =
            opts.warmup_insts + opts.measure_insts;
        _chip->cpu(lead_core).addThread(lead_tid, workloads[i].program,
                                        *memories[i],
                                        static_cast<LogicalId>(i),
                                        Role::Leading, &pair);
        _chip->cpu(lead_core).setTarget(lead_tid, total, opts.warmup_insts);
        _chip->cpu(trail_core).addThread(trail_tid, workloads[i].program,
                                         *memories[i],
                                         static_cast<LogicalId>(i),
                                         Role::Trailing, &pair);
        _chip->cpu(trail_core).setTarget(trail_tid, total,
                                         opts.warmup_insts);

        placements[i] =
            Placement{lead_core, lead_tid, trail_core, trail_tid, true};
    }
}

RunResult
Simulation::run()
{
    const std::uint64_t per_thread =
        opts.warmup_insts + opts.measure_insts;
    // Generous safety cap: no sane configuration exceeds ~100 CPI.
    const Cycle cap =
        100 * per_thread * std::max<std::uint64_t>(workloads.size(), 1) +
        1'000'000;

    // Same tick sequence as Chip::run(cap), unrolled here so the
    // warmup/measure wall-clock split can be attributed.  The warmup
    // boundary check only moves the timer lap; it never changes which
    // cycles are simulated.
    auto pastWarmup = [&]() {
        for (const Placement &pl : placements) {
            if (_chip->cpu(pl.lead_core).committed(pl.lead_tid) <
                opts.warmup_insts) {
                return false;
            }
            if (pl.redundant &&
                _chip->cpu(pl.trail_core).committed(pl.trail_tid) <
                    opts.warmup_insts) {
                return false;
            }
        }
        return true;
    };

    // Forward-progress watchdog: every live hardware thread (including
    // Base2 copies that have no placement entry) must commit within any
    // hang_cycles window, else the run ends with a structured Hang
    // verdict instead of spinning to the cap.
    struct ProgressWatch
    {
        CoreId core;
        ThreadId tid;
        std::uint64_t committed;
        Cycle last;
    };
    std::vector<ProgressWatch> watch;
    if (opts.hang_cycles) {
        for (unsigned c = 0; c < _chip->numCores(); ++c) {
            SmtCpu &cpu = _chip->cpu(c);
            for (unsigned t = 0; t < cpu.numThreads(); ++t) {
                if (cpu.threadActive(static_cast<ThreadId>(t))) {
                    watch.push_back(ProgressWatch{
                        static_cast<CoreId>(c), static_cast<ThreadId>(t),
                        cpu.committed(static_cast<ThreadId>(t)), 0});
                }
            }
        }
    }

    WallTimer run_timer;
    double warmup_seconds = 0;
    bool in_warmup = opts.warmup_insts > 0;
    bool hung = false;
    Cycle n = 0;

    // One simulated cycle with warmup/watchdog accounting; shared by
    // the main loop and the snapshot-barrier drain so a drained cycle
    // is indistinguishable from any other.
    auto tickOnce = [&]() {
        _chip->tick();
        ++n;
        if (in_warmup && pastWarmup()) {
            warmup_seconds = run_timer.lap();
            in_warmup = false;
        }
        for (auto &w : watch) {
            SmtCpu &cpu = _chip->cpu(w.core);
            if (cpu.threadDone(w.tid)) {
                w.last = n;
                continue;
            }
            const std::uint64_t done = cpu.committed(w.tid);
            if (done != w.committed) {
                w.committed = done;
                w.last = n;
            } else if (n - w.last >= opts.hang_cycles) {
                hung = true;
                break;
            }
        }
    };

    // Snapshot barriers key off the *absolute* chip cycle so a restored
    // run executes the same freeze-drain schedule as an unbroken one.
    const std::uint64_t snap_every = opts.snapshot_every;
    Cycle next_barrier = 0;
    if (snap_every)
        next_barrier = (_chip->cycle() / snap_every + 1) * snap_every;

    while (n < cap && !_chip->allDone() && !hung) {
        tickOnce();
        if (snap_every && !hung && !_chip->allDone() &&
            _chip->cycle() >= next_barrier) {
            // Freeze-drain: stop non-trailing fetch, let everything in
            // flight commit, then (quiesced) hand control to the hook.
            _chip->setDraining(true);
            const Cycle drain_start = _chip->cycle();
            while (!_chip->quiescedForSnapshot() && n < cap && !hung) {
                tickOnce();
                if (_chip->cycle() - drain_start > maxSnapshotDrainCycles) {
                    fatal("snapshot barrier at cycle %llu did not quiesce "
                          "within %llu cycles",
                          static_cast<unsigned long long>(next_barrier),
                          static_cast<unsigned long long>(
                              maxSnapshotDrainCycles));
                }
            }
            _chip->setDraining(false);
            if (!hung && _chip->quiescedForSnapshot() && snapshotHook)
                snapshotHook(_chip->cycle(), *this);
            next_barrier = (_chip->cycle() / snap_every + 1) * snap_every;
        }
    }
    // Drain: forwarded outputs may still be in flight (Chip::run).
    if (_chip->allDone()) {
        for (Cycle d = 0; d < Chip::drainCycles && n < cap; ++d, ++n)
            _chip->tick();
    }
    if (in_warmup)
        warmup_seconds = run_timer.lap();
    const double measure_seconds = run_timer.lap();

    RunResult result;
    result.host.build_seconds = buildSeconds;
    result.host.warmup_seconds = warmup_seconds;
    result.host.measure_seconds = measure_seconds;
    result.total_cycles = _chip->cycle();

    for (unsigned i = 0; i < workloads.size(); ++i) {
        const Placement &pl = placements[i];
        SmtCpu &lead_cpu = _chip->cpu(pl.lead_core);
        ThreadResult tr;
        tr.workload = workloads[i].name;
        tr.ipc = lead_cpu.ipc(pl.lead_tid);
        tr.committed = lead_cpu.committed(pl.lead_tid);
        tr.cycles = lead_cpu.threadCycles(pl.lead_tid);
        result.threads.push_back(tr);

        if (pl.redundant) {
            RedundantPair *pair =
                _chip->redundancy().pairFor(pl.lead_core, pl.lead_tid);
            result.detections += pair->detectionCount();
            if (pair->recovery)
                result.recoveries += pair->recovery->recoveries();
            result.fu_pairs += pair->fuPairsCompared();
            result.fu_same_unit += pair->fuPairsSameUnit();
            result.store_comparisons += pair->comparator.comparisons();
            result.store_mismatches += pair->comparator.mismatches();
        }
    }

    double lifetime_sum = 0;
    unsigned lifetime_n = 0;
    for (unsigned c = 0; c < _chip->numCores(); ++c) {
        SmtCpu &cpu = _chip->cpu(c);
        result.commit_width = cpu.commitWidth();
        result.attribution_core_cycles += cpu.cycleCount();
        result.attribution += cpu.attributionSlots();
        result.sq_full_stalls += cpu.sqFullStalls();
        result.lvq_full_stalls += cpu.lvqFullStalls();
        result.branch_mispredicts += cpu.branchMispredicts();
        result.line_mispredicts += cpu.lineMispredicts();
        for (unsigned i = 0; i < workloads.size(); ++i) {
            const Placement &pl = placements[i];
            if (pl.lead_core == c) {
                const double m = cpu.avgStoreLifetime(pl.lead_tid);
                if (m > 0) {
                    lifetime_sum += m;
                    ++lifetime_n;
                }
            }
        }
    }
    if (lifetime_n)
        result.avg_leading_store_lifetime = lifetime_sum / lifetime_n;

    // Structured verdict.  "Reached" asks whether every logical thread
    // hit its instruction target: a chip can be allDone() short of the
    // target when a fault steered a thread into an early Halt, which is
    // not a completed run.
    bool reached = true;
    for (const Placement &pl : placements) {
        if (_chip->cpu(pl.lead_core).committed(pl.lead_tid) < per_thread)
            reached = false;
        if (pl.redundant &&
            _chip->cpu(pl.trail_core).committed(pl.trail_tid) <
                per_thread) {
            reached = false;
        }
    }
    if (hung) {
        result.outcome = result.detections ? Outcome::DetectedUnrecoverable
                                           : Outcome::Hang;
    } else if (!_chip->allDone()) {
        result.outcome = Outcome::CapExceeded;
    } else if (reached) {
        result.outcome = Outcome::Completed;
    } else {
        result.outcome = result.detections ? Outcome::DetectedUnrecoverable
                                           : Outcome::Hang;
    }
    result.completed = result.outcome == Outcome::Completed;

    std::uint64_t committed_total = 0;
    for (unsigned c = 0; c < _chip->numCores(); ++c)
        committed_total += _chip->cpu(c).committedAll();
    const double sim_seconds = warmup_seconds + measure_seconds;
    if (sim_seconds > 0) {
        result.host.sim_kips =
            static_cast<double>(committed_total) / sim_seconds / 1000.0;
    }

    if (opts.collect_stats_json)
        result.stats_json = statsJson(result);
    return result;
}

std::string
Simulation::statsJson(const RunResult &result)
{
    // The schema/mode/workloads keys never change for a Simulation;
    // format them once and reuse across repeated exports.
    if (statsJsonPrefix.empty()) {
        std::ostringstream os;
        os << "{\"schema\":\"rmtsim-stats-v1\""
           << ",\"mode\":\"" << modeName(opts.mode) << "\""
           << ",\"workloads\":[";
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            os << (i ? "," : "") << "\""
               << jsonEscape(workloads[i].name) << "\"";
        }
        os << "],";
        statsJsonPrefix = os.str();
    }
    std::ostringstream os;
    os << statsJsonPrefix
       << "\"total_cycles\":" << result.total_cycles
       << ",\"completed\":" << (result.completed ? "true" : "false")
       << ",\"outcome\":\"" << outcomeName(result.outcome) << "\""
       << ",\"host\":" << result.host.json()
       << ",\"attribution\":";
    // Recompute from the chip rather than trusting the caller's
    // RunResult: a restored run's counters came back through the
    // snapshot walk, and this keeps the export tied to them.
    {
        StallSlots slots;
        std::uint64_t core_cycles = 0;
        unsigned width = 0;
        for (unsigned c = 0; c < _chip->numCores(); ++c) {
            const SmtCpu &cpu = _chip->cpu(c);
            width = cpu.commitWidth();
            core_cycles += cpu.cycleCount();
            slots += cpu.attributionSlots();
        }
        os << "{\"width\":" << width
           << ",\"core_cycles\":" << core_cycles
           << ",\"slots\":";
        slots.json(os);
        os << "}";
    }
    os << ",\"groups\":" << chipStatsJson(*_chip) << "}";
    return os.str();
}

std::string
optionsCanonicalJson(const SimOptions &o)
{
    std::ostringstream os;
    os << "{\"mode\":\"" << modeName(o.mode) << "\""
       << ",\"warmup_insts\":" << o.warmup_insts
       << ",\"measure_insts\":" << o.measure_insts
       << ",\"checker_penalty\":" << o.checker_penalty
       << ",\"ptsq\":" << (o.per_thread_store_queues ? 1 : 0)
       << ",\"store_comparison\":" << (o.store_comparison ? 1 : 0)
       << ",\"psr\":" << (o.preferential_space_redundancy ? 1 : 0)
       << ",\"frontend\":\"" << frontendName(o.trailing_fetch) << "\""
       << ",\"slack\":" << o.slack_fetch
       << ",\"lvq_ecc\":" << (o.lvq_ecc ? 1 : 0)
       << ",\"lpq_ecc\":" << (o.lpq_ecc ? 1 : 0)
       << ",\"boq_ecc\":" << (o.boq_ecc ? 1 : 0)
       << ",\"merge_ecc\":" << (o.merge_buffer_ecc ? 1 : 0)
       << ",\"hang\":" << o.hang_cycles
       << ",\"storeq\":" << o.cpu.store_queue_entries
       << ",\"lvq\":" << o.cpu.lvq_entries
       << ",\"lpq\":" << o.cpu.lpq_entries
       << ",\"rob\":" << o.cpu.rob_entries
       << ",\"iq\":" << o.cpu.iq_entries
       << ",\"recovery\":" << (o.recovery ? 1 : 0)
       << ",\"snapshot_every\":" << o.snapshot_every
       << "}";
    return os.str();
}

std::uint64_t
optionsFingerprintU64(const SimOptions &options)
{
    return fnv1a64(optionsCanonicalJson(options));
}

namespace
{

/**
 * Data images are huge and almost entirely zero (the workloads touch a
 * small fraction of their address space), so the "memory" section stores
 * only the nonzero 4 KiB pages: total size, page size, page count, then
 * (page index, page bytes) per stored page.  Restore zero-fills first,
 * which is exact — the saved state fully defines the image.
 */
constexpr std::size_t snapshotPageBytes = 4096;

void
saveSparseMemory(Serializer &s, const DataMemory &m)
{
    const std::uint8_t *bytes = m.data();
    const std::size_t size = m.size();
    const std::size_t pages =
        (size + snapshotPageBytes - 1) / snapshotPageBytes;

    static const std::uint8_t zero[snapshotPageBytes] = {};
    const auto pageLen = [size](std::size_t p) {
        return std::min(snapshotPageBytes, size - p * snapshotPageBytes);
    };

    std::uint32_t nonzero = 0;
    for (std::size_t p = 0; p < pages; ++p) {
        if (std::memcmp(bytes + p * snapshotPageBytes, zero, pageLen(p)))
            ++nonzero;
    }

    s.u64(size);
    s.u32(static_cast<std::uint32_t>(snapshotPageBytes));
    s.u32(nonzero);
    for (std::size_t p = 0; p < pages; ++p) {
        if (std::memcmp(bytes + p * snapshotPageBytes, zero, pageLen(p))) {
            s.u32(static_cast<std::uint32_t>(p));
            s.blob(bytes + p * snapshotPageBytes, pageLen(p));
        }
    }
}

void
loadSparseMemory(Deserializer &d, DataMemory &m)
{
    if (d.u64() != m.size())
        throw SnapshotError("snapshot: memory image size mismatch");
    if (d.u32() != snapshotPageBytes)
        throw SnapshotError("snapshot: memory page size mismatch");

    std::fill_n(m.data(), m.size(), std::uint8_t{0});
    const std::uint32_t stored = d.u32();
    for (std::uint32_t i = 0; i < stored; ++i) {
        const std::uint64_t off =
            std::uint64_t{d.u32()} * snapshotPageBytes;
        const std::vector<std::uint8_t> page = d.blob();
        if (off + page.size() > m.size())
            throw SnapshotError("snapshot: memory page out of range");
        std::copy(page.begin(), page.end(), m.data() + off);
    }
}

} // namespace

std::string
Simulation::saveSnapshotBuffer() const
{
    if (opts.cosim)
        throw SnapshotError("snapshots are incompatible with cosim");
    if (opts.recovery)
        throw SnapshotError("snapshots are incompatible with recovery");
    if (!_chip->quiescedForSnapshot()) {
        throw SnapshotError(
            "snapshot requires a quiesced chip (save from the snapshot "
            "hook or after the run finished)");
    }

    Serializer s;
    s.beginSection("meta");
    s.u64(_chip->cycle());
    s.u32(static_cast<std::uint32_t>(workloads.size()));
    for (const Workload &w : workloads)
        s.str(w.name);
    s.endSection();

    s.beginSection("chip");
    _chip->saveState(s);
    s.endSection();

    s.beginSection("memory");
    s.u32(static_cast<std::uint32_t>(memories.size()));
    for (const auto &m : memories)
        saveSparseMemory(s, *m);
    s.u32(static_cast<std::uint32_t>(copyMemories.size()));
    for (const auto &m : copyMemories)
        saveSparseMemory(s, *m);
    s.endSection();

    saveChipStats(s, *_chip);
    return s.finish(optionsFingerprintU64(opts));
}

void
Simulation::restoreSnapshotBuffer(const std::string &image)
{
    if (opts.cosim)
        throw SnapshotError("snapshots are incompatible with cosim");
    if (opts.recovery)
        throw SnapshotError("snapshots are incompatible with recovery");
    if (_chip->cycle() != 0) {
        throw SnapshotError(
            "restore requires a freshly built simulation");
    }

    // Whole-image structural validation (header, every section frame,
    // every CRC) before a single byte is applied: a truncated or
    // corrupted image must reject with the machine still pristine,
    // never half-restored.
    validateSnapshotImage(image, optionsFingerprintU64(opts));

    Deserializer d(image, optionsFingerprintU64(opts));

    d.beginSection("meta");
    const Cycle cyc = d.u64();
    if (d.u32() != workloads.size())
        throw SnapshotError("snapshot: workload count mismatch");
    for (const Workload &w : workloads) {
        if (d.str() != w.name)
            throw SnapshotError("snapshot: workload set mismatch");
    }
    d.endSection();

    d.beginSection("chip");
    _chip->loadState(d);
    d.endSection();

    d.beginSection("memory");
    if (d.u32() != memories.size())
        throw SnapshotError("snapshot: memory image count mismatch");
    for (auto &m : memories)
        loadSparseMemory(d, *m);
    if (d.u32() != copyMemories.size())
        throw SnapshotError("snapshot: memory image count mismatch");
    for (auto &m : copyMemories)
        loadSparseMemory(d, *m);
    d.endSection();

    loadChipStats(d, *_chip);

    restoredAt = cyc;
    injector.setRestoredCycle(cyc);
}

void
Simulation::saveSnapshot(const std::string &path) const
{
    const std::string image = saveSnapshotBuffer();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw SnapshotError("cannot open snapshot file: " + path);
    out.write(image.data(),
              static_cast<std::streamsize>(image.size()));
    if (!out)
        throw SnapshotError("cannot write snapshot file: " + path);
}

void
Simulation::restoreSnapshot(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot open snapshot file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        restoreSnapshotBuffer(buf.str());
    } catch (const SnapshotError &e) {
        // Re-raise with the file named: "section 'chip' truncated" is
        // only actionable if you know which file held it.
        throw SnapshotError("snapshot file '" + path + "': " + e.what());
    }
}

RunResult
runSimulation(const std::vector<std::string> &workloads,
              const SimOptions &options)
{
    Simulation sim(workloads, options);
    return sim.run();
}

double
singleThreadIpc(const std::string &workload, const SimOptions &options)
{
    SimOptions single = options;
    single.mode = SimMode::Base;
    single.checker_penalty = 0;
    Simulation sim({workload}, single);
    const RunResult r = sim.run();
    return r.threads.at(0).ipc;
}

} // namespace rmt
