/**
 * @file
 * SMT-Efficiency (paper Section 6.4): per-thread IPC in the evaluated
 * mode divided by the thread's single-thread IPC on the same machine,
 * averaged arithmetically across threads (Snavely & Tullsen's weighted
 * speedup).
 */

#ifndef RMTSIM_SIM_METRICS_HH
#define RMTSIM_SIM_METRICS_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace rmt
{

/** SMT-Efficiency of one logical thread. */
double smtEfficiency(double mode_ipc, double single_thread_ipc);

/** Arithmetic mean of per-thread efficiencies (weighted speedup). */
double meanEfficiency(const std::vector<double> &efficiencies);

/**
 * Cache of single-thread IPCs so sweeps do not re-simulate the
 * baseline for every configuration.
 */
class BaselineCache
{
  public:
    explicit BaselineCache(const SimOptions &options) : opts(options) {}

    /** Single-thread IPC of @p workload (simulated once, then cached). */
    double ipc(const std::string &workload);

    /** Mean SMT-Efficiency of @p result against the cached baselines. */
    double efficiency(const RunResult &result);

    /** Per-thread efficiencies of @p result. */
    std::vector<double> efficiencies(const RunResult &result);

  private:
    SimOptions opts;
    std::vector<std::pair<std::string, double>> cache;
};

} // namespace rmt

#endif // RMTSIM_SIM_METRICS_HH
