/**
 * @file
 * SMT-Efficiency (paper Section 6.4): per-thread IPC in the evaluated
 * mode divided by the thread's single-thread IPC on the same machine,
 * averaged arithmetically across threads (Snavely & Tullsen's weighted
 * speedup).
 */

#ifndef RMTSIM_SIM_METRICS_HH
#define RMTSIM_SIM_METRICS_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hh"

namespace rmt
{

/** SMT-Efficiency of one logical thread. */
double smtEfficiency(double mode_ipc, double single_thread_ipc);

/** Arithmetic mean of per-thread efficiencies (weighted speedup). */
double meanEfficiency(const std::vector<double> &efficiencies);

/**
 * Cache of single-thread IPCs so sweeps do not re-simulate the
 * baseline for every configuration.
 *
 * Thread-safe with single-flight semantics: when N campaign workers
 * ask for the same workload's baseline at once, exactly one simulates
 * it while the others block on the condition variable until the value
 * is published.  Keyed by an unordered_map so a lookup is O(1) rather
 * than a linear scan over every cached workload.
 */
class BaselineCache
{
  public:
    explicit BaselineCache(const SimOptions &options) : opts(options) {}

    /**
     * Attach an on-disk store: baselines are read from
     * `DIR/baseline-<options fingerprint>-<workload>.json` when
     * present and written there after each simulation, so repeated
     * campaigns under the same options skip the baseline runs
     * entirely.  The directory is created if needed.  A missing or
     * unparsable file falls back to simulating (and rewrites it).
     */
    void setStore(const std::string &dir);

    /** Single-thread IPC of @p workload (simulated once, then cached). */
    double ipc(const std::string &workload);

    /** Mean SMT-Efficiency of @p result against the cached baselines. */
    double efficiency(const RunResult &result);

    /** Per-thread efficiencies of @p result. */
    std::vector<double> efficiencies(const RunResult &result);

    /** Number of baseline simulations actually executed (the
     *  single-flight invariant: one per distinct workload). */
    std::uint64_t simulations() const;

  private:
    struct Entry
    {
        bool ready = false;
        double value = 0;
    };

    /** Store path for @p workload, or "" when no store is attached. */
    std::string storePath(const std::string &workload) const;

    SimOptions opts;
    std::string store_dir;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, Entry> cache;
    std::uint64_t sims = 0;
};

} // namespace rmt

#endif // RMTSIM_SIM_METRICS_HH
