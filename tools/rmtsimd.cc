/**
 * @file
 * rmtsimd — the campaign daemon (src/serve/).
 *
 *   rmtsimd --socket /tmp/rmt.sock --store /var/tmp/rmt-store -j 8
 *
 * serves campaigns submitted by `rmtsim_batch --server /tmp/rmt.sock`
 * until SIGTERM/SIGINT (drain: in-flight jobs finish and are stored)
 * or a `stop` verb.  Every computed JobResult lands in the
 * content-addressed store under --store, so resubmitting a campaign —
 * same process or a later one — streams byte-identical rows straight
 * from disk.
 *
 * Control verbs (run against a live daemon):
 *
 *   rmtsimd status --socket SOCK     one JSON status object
 *   rmtsimd flush  --socket SOCK     fsync the store now
 *   rmtsimd stop   --socket SOCK     begin the drain
 *   rmtsimd cancel --socket SOCK [--campaign FP]
 *                                    cancel one campaign (16-hex
 *                                    fingerprint) or, with no
 *                                    --campaign, every live one
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/json.hh"
#include "common/logging.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"

using namespace rmt;

#if defined(__unix__) || defined(__APPLE__)

namespace
{

serve::Daemon *g_daemon = nullptr;

extern "C" void
handleStopSignal(int)
{
    if (g_daemon)
        g_daemon->requestStop();
}

void
usage()
{
    std::printf(
        "rmtsimd — campaign daemon with a content-addressed result "
        "store\n"
        "\n"
        "  rmtsimd [serve] --socket SOCK --store DIR [options]\n"
        "  rmtsimd status|flush|stop|cancel --socket SOCK\n"
        "\n"
        "serve options:\n"
        "  --socket SOCK     Unix socket path to listen on "
        "(required)\n"
        "  --store DIR       result store directory (required; "
        "created if missing)\n"
        "  -j, --jobs N      simulation worker threads (default 0 = "
        "all cores)\n"
        "  --retries N       attempts per job (default 2)\n"
        "  --timeout-ms N    per-job wall-clock guard (default off)\n"
        "  --max-insts N     hard per-job cap on warmup+measure\n"
        "  --store-sync N    fsync the store every N rows (default "
        "16; 1 = every row)\n"
        "  --pid-file FILE   write the daemon pid to FILE (removed on "
        "exit)\n"
        "\n"
        "control options:\n"
        "  --campaign FP     16-hex campaign fingerprint for cancel\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::string verb = "serve";
    std::string campaign_fp;
    std::string pid_file;
    serve::DaemonConfig cfg;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for " +
                                                arg);
                return argv[++i];
            };
            if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg == "--socket") {
                cfg.socket_path = next();
            } else if (arg == "--store") {
                cfg.store_dir = next();
            } else if (arg == "-j" || arg == "--jobs") {
                cfg.jobs = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--retries") {
                cfg.max_attempts =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--timeout-ms") {
                cfg.timeout_seconds = std::stod(next()) / 1e3;
            } else if (arg == "--max-insts") {
                cfg.max_insts = std::stoull(next());
            } else if (arg == "--store-sync") {
                cfg.store_sync_every =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--pid-file") {
                pid_file = next();
            } else if (arg == "--campaign") {
                campaign_fp = next();
            } else if (!arg.empty() && arg[0] != '-') {
                verb = arg;
            } else {
                usage();
                throw std::invalid_argument("unknown argument '" + arg +
                                            "'");
            }
        }
        if (cfg.socket_path.empty())
            throw std::invalid_argument("--socket is required");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rmtsimd: %s\n", e.what());
        return 2;
    }

    if (verb != "serve") {
        // Control verbs: one request, print the JSON reply, exit.
        std::string request;
        if (verb == "status" || verb == "flush" || verb == "stop") {
            request = "{\"type\":\"" + verb + "\"}";
        } else if (verb == "cancel") {
            request = "{\"type\":\"cancel\",\"campaign\":\"" +
                      jsonEscape(campaign_fp) + "\"}";
        } else {
            std::fprintf(stderr, "rmtsimd: unknown verb '%s'\n",
                         verb.c_str());
            return 2;
        }
        try {
            const std::string reply =
                serve::controlRequest(cfg.socket_path, request);
            std::printf("%s\n", reply.c_str());
            return 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsimd: %s\n", e.what());
            return 1;
        }
    }

    if (cfg.store_dir.empty()) {
        std::fprintf(stderr, "rmtsimd: --store is required\n");
        return 2;
    }

    serve::Daemon daemon(cfg);
    try {
        daemon.open();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rmtsimd: %s\n", e.what());
        return 1;
    }

    if (!pid_file.empty()) {
        std::FILE *f = std::fopen(pid_file.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "rmtsimd: cannot write pid file "
                         "'%s'\n",
                         pid_file.c_str());
            return 1;
        }
        std::fprintf(f, "%ld\n", static_cast<long>(::getpid()));
        std::fclose(f);
    }

    g_daemon = &daemon;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::fprintf(stderr, "rmtsimd: serving on %s (store %s)\n",
                 cfg.socket_path.c_str(), cfg.store_dir.c_str());
    daemon.run();
    g_daemon = nullptr;

    if (!pid_file.empty())
        std::remove(pid_file.c_str());
    std::fprintf(stderr, "rmtsimd: drained, store flushed\n");
    return 0;
}

#else // !POSIX

int
main()
{
    std::fprintf(stderr,
                 "rmtsimd needs Unix-domain sockets (POSIX only)\n");
    return 2;
}

#endif
