/**
 * @file
 * Batch campaign driver: expand a configuration grid, run it over the
 * work-stealing pool, stream one JSON object per job to a .jsonl file.
 *
 *   rmtsim_batch --modes srt,crt --workloads gcc,swim \
 *                --sweep slack=0,32,64 -j 8 --out results.jsonl
 *   rmtsim_batch --modes srt --workloads compress --fault-trials 100 \
 *                --insts 12000 --warmup 0 -j 8 --out faults.jsonl
 *
 * Job ids are assigned in grid order and results are emitted in id
 * order, so the output file is deterministic and independent of -j
 * (use --no-timing to drop the wall-clock field and make runs
 * byte-for-byte diffable).
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "avf/sampler.hh"
#include "common/logging.hh"
#include "runner/fork_executor.hh"
#include "runner/journal.hh"
#include "runner/runner.hh"
#include "serve/client.hh"
#include "sim/metrics.hh"
#include "workloads/workloads.hh"

using namespace rmt;

namespace
{

/** SIGINT/SIGTERM drain flag: workers stop picking up new jobs, the
 *  in-flight ones finish and are journaled, and main exits 4 with a
 *  resumable journal on disk. */
std::atomic<bool> g_stop{false};

extern "C" void
handleStopSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

void
usage()
{
    std::printf(
        "rmtsim_batch — parallel experiment campaigns over the rmtsim "
        "grid\n"
        "\n"
        "grid:\n"
        "  --modes M,M,...   base | base2 | srt | lockstep | crt "
        "(default srt)\n"
        "  --workloads W,... single-thread mixes, one job per name; "
        "'all' = SPEC95 set\n"
        "  --mix A+B[+C...]  add one multiprogrammed mix "
        "(repeatable)\n"
        "  --sweep K=V,V,... cartesian axis (repeatable); keys: slack "
        "checker storeq lvq lpq rob iq insts warmup ptsq nosc psr ecc "
        "frontend\n"
        "  --fault-trials N  N seeded transient-reg strikes per grid "
        "point (each trial gets an oracle verdict vs a golden run); "
        "with --stratify, the trial budget per stratum\n"
        "  --max-reg N       victim register bound for fault trials "
        "(default 31)\n"
        "  --seed S          campaign seed (default 1)\n"
        "\n"
        "statistical campaigns (src/avf/):\n"
        "  --stratify        stratified sampling over fault kinds x "
        "strike windows with per-stratum AVF estimates\n"
        "  --ci-width W      stop sampling a stratum once its Wilson "
        "interval is narrower than W (0 = fixed budget)\n"
        "  --confidence C    interval confidence (default 0.95)\n"
        "  --windows N       strike windows per kind (default 2)\n"
        "  --batch N         trials per stratum per round (default "
        "16)\n"
        "  --kinds K,K,...   fault kinds to stratify (default: every "
        "kind the machine supports, minus permanent fu)\n"
        "\n"
        "checkpointing:\n"
        "  --snapshot-every N  place a snapshot barrier every N cycles; "
        "fault trials fork from the latest snapshot before their "
        "strike\n"
        "  --no-snapshot-fork  keep the barriers but run every trial "
        "from scratch (timing-identical control for the forked run)\n"
        "  --baseline-cache DIR  persist --efficiency baselines to DIR "
        "keyed by options fingerprint\n"
        "\n"
        "budgets:\n"
        "  --insts N         measured instructions/thread (default "
        "40000)\n"
        "  --warmup N        warm-up instructions/thread (default "
        "20000)\n"
        "  --max-insts N     hard per-job cap on warmup+measure\n"
        "  --timeout-ms N    record jobs slower than this as failed\n"
        "\n"
        "execution:\n"
        "  -j, --jobs N      worker threads (default 1; 0 = all "
        "cores); fault trials instead run through the fork() "
        "executor\n"
        "  --no-fork         run fault trials in-process instead of "
        "as fork()ed children (non-POSIX / sanitizer builds)\n"
        "  --retries N       attempts per job (default 2 = retry "
        "once)\n"
        "  --out FILE        .jsonl output (default '-' = stdout)\n"
        "  --fsync           fsync the output file on close (no torn "
        "records after a crash)\n"
        "  --efficiency      add SMT-efficiency vs shared baseline "
        "cache\n"
        "  --embed-stats     embed the full stats tree in each job "
        "record\n"
        "  --no-timing       omit wall_ms/host (byte-diffable "
        "output)\n"
        "  --server SOCK     submit the campaign to the rmtsimd at "
        "SOCK instead of\n"
        "                    simulating in-process; rows stream back "
        "in the same\n"
        "                    order (previously-computed jobs come "
        "from the daemon's\n"
        "                    result store).  Incompatible with "
        "--stratify, --resume,\n"
        "                    --efficiency and --baseline-cache\n"
        "  --quiet           no stderr progress\n"
        "  --progress        force the stderr heartbeat (done/total, "
        "elapsed, ETA)\n"
        "                    even under --stratify or a non-tty "
        "stderr\n"
        "  --list            print the expanded job grid and exit\n"
        "\n"
        "resilience (see DESIGN.md):\n"
        "  --resume          replay <out>.journal, skip every job whose "
        "result is\n"
        "                    already recorded, run the rest; the final "
        ".jsonl is\n"
        "                    byte-identical to an uninterrupted run\n"
        "  --no-journal      disable the write-ahead result journal "
        "(on by default\n"
        "                    whenever --out is a file and --stratify "
        "is off)\n"
        "  --journal-sync N  fsync the journal every N records "
        "(default 32)\n"
        "\n"
        "exit codes: 0 clean; 1 hard failure; 2 usage error; 3 "
        "degraded (failed or\n"
        "quarantined jobs recorded); 4 interrupted (journal kept — "
        "rerun with --resume)\n");
}

std::vector<std::string>
split(const std::string &arg, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, sep))
        out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    SimOptions base;
    base.warmup_insts = 20000;
    base.measure_insts = 40000;

    std::vector<SimMode> modes;
    std::vector<std::vector<std::string>> mixes;
    std::vector<std::pair<std::string, std::vector<std::string>>> sweeps;
    unsigned fault_trials = 0;
    unsigned max_reg = 31;
    std::uint64_t seed = 1;

    RunnerConfig cfg;
    std::string out_path = "-";
    std::string server_sock;
    std::string baseline_dir;
    bool want_efficiency = false;
    bool list_only = false;
    bool snapshot_fork = true;
    bool use_fork = true;
    bool want_fsync = false;
    bool quiet = false;
    bool force_progress = false;
    bool stratify = false;
    bool resume = false;
    bool want_journal = true;
    unsigned journal_sync = 32;
    long long test_crash = -1;
    double ci_width = 0;
    double confidence = 0.95;
    unsigned windows = 2;
    unsigned batch = 16;
    std::string kinds_csv;
    JsonlSink::Options sink_opts;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for " +
                                                arg);
                return argv[++i];
            };
            if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg == "--modes") {
                for (const auto &m : split(next(), ','))
                    modes.push_back(parseMode(m));
            } else if (arg == "--workloads") {
                const auto names = split(next(), ',');
                if (names.size() == 1 && names[0] == "all") {
                    for (const auto &n : spec95Names())
                        mixes.push_back({n});
                } else {
                    for (const auto &n : names)
                        mixes.push_back({n});
                }
            } else if (arg == "--mix") {
                mixes.push_back(split(next(), '+'));
            } else if (arg == "--sweep") {
                const std::string spec = next();
                const auto eq = spec.find('=');
                if (eq == std::string::npos)
                    throw std::invalid_argument("bad --sweep '" + spec +
                                                "' (want key=v1,v2)");
                sweeps.emplace_back(spec.substr(0, eq),
                                    split(spec.substr(eq + 1), ','));
            } else if (arg == "--fault-trials") {
                fault_trials =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--max-reg") {
                max_reg = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--seed") {
                seed = std::stoull(next());
            } else if (arg == "--insts") {
                base.measure_insts = std::stoull(next());
            } else if (arg == "--warmup") {
                base.warmup_insts = std::stoull(next());
            } else if (arg == "--max-insts") {
                cfg.max_insts = std::stoull(next());
            } else if (arg == "--timeout-ms") {
                cfg.timeout_seconds = std::stod(next()) / 1e3;
            } else if (arg == "-j" || arg == "--jobs") {
                cfg.jobs = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--retries") {
                cfg.max_attempts =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--out") {
                out_path = next();
            } else if (arg == "--server") {
                server_sock = next();
            } else if (arg == "--efficiency") {
                want_efficiency = true;
            } else if (arg == "--embed-stats") {
                base.collect_stats_json = true;
            } else if (arg == "--snapshot-every") {
                base.snapshot_every = std::stoull(next());
            } else if (arg == "--no-snapshot-fork") {
                snapshot_fork = false;
            } else if (arg == "--no-fork") {
                use_fork = false;
            } else if (arg == "--fsync") {
                want_fsync = true;
            } else if (arg == "--stratify") {
                stratify = true;
            } else if (arg == "--ci-width") {
                ci_width = std::stod(next());
            } else if (arg == "--confidence") {
                confidence = std::stod(next());
            } else if (arg == "--windows") {
                windows = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--batch") {
                batch = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--kinds") {
                kinds_csv = next();
            } else if (arg == "--baseline-cache") {
                baseline_dir = next();
            } else if (arg == "--no-timing") {
                sink_opts.include_timing = false;
            } else if (arg == "--quiet") {
                quiet = true;
                sink_opts.progress = false;
            } else if (arg == "--progress" || arg == "--progress=force") {
                force_progress = true;
            } else if (arg == "--resume") {
                resume = true;
            } else if (arg == "--no-journal") {
                want_journal = false;
            } else if (arg == "--journal-sync") {
                journal_sync =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--test-crash-trial") {
                // Undocumented test hook: _Exit(9) right after the
                // named job's post_run, before its record is written —
                // a deterministic mid-campaign crash for the
                // resilience gates (tools/check.sh).
                test_crash = std::stoll(next());
            } else if (arg == "--list") {
                list_only = true;
            } else {
                usage();
                throw std::invalid_argument("unknown argument '" + arg +
                                            "'");
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
        return 2;
    }

    if (!server_sock.empty()) {
        // Server mode ships JobSpecs, not local machinery: adaptive
        // sampling, journal resume and the shared baseline cache all
        // live on this side of the socket and cannot ride along.
        const char *clash = nullptr;
        if (stratify)
            clash = "--stratify";
        else if (resume)
            clash = "--resume";
        else if (want_efficiency)
            clash = "--efficiency";
        else if (!baseline_dir.empty())
            clash = "--baseline-cache";
        else if (test_crash >= 0)
            clash = "--test-crash-trial";
        if (clash) {
            std::fprintf(stderr,
                         "rmtsim_batch: %s cannot be combined with "
                         "--server\n",
                         clash);
            return 2;
        }
        want_journal = false;   // the daemon's store is the journal
#if !defined(__unix__) && !defined(__APPLE__)
        std::fprintf(stderr,
                     "rmtsim_batch: --server needs Unix-domain "
                     "sockets (POSIX only)\n");
        return 2;
#endif
    }

    if (modes.empty())
        modes.push_back(SimMode::Srt);

    Campaign campaign;
    try {
        CampaignBuilder builder("batch", seed);
        builder.base(base).modes(modes);
        if (!mixes.empty())
            builder.mixes(mixes);
        for (const auto &[key, values] : sweeps)
            builder.sweep(key, values);
        // Stratified campaigns draw their own faults per stratum; the
        // grid expansion then only provides the cells (one job per
        // grid point, faultless).
        if (fault_trials && !stratify)
            builder.transientRegTrials(fault_trials, max_reg);
        campaign = builder.build();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
        return 2;
    }

    // Every fault trial gets an oracle verdict: one golden (fault-free)
    // run per distinct (mix, effective options) point, shared by all of
    // that point's trials.  The golden uses the same capped budgets the
    // trials will actually run under, or the memory comparison would
    // flag the budget difference as corruption.
    std::map<std::string, std::unique_ptr<FaultOracle>> oracles;
    std::vector<const FaultOracle *> cell_oracles(campaign.jobs.size(),
                                                  nullptr);
    // In server mode the daemon runs the goldens itself (once per
    // distinct point, cached with everything else in its store).
    if ((fault_trials || stratify) && server_sock.empty()) {
        try {
            for (JobSpec &job : campaign.jobs) {
                if (job.faults.empty() && !stratify)
                    continue;
                SimOptions o = job.options;
                if (cfg.max_insts) {
                    o.warmup_insts =
                        std::min(o.warmup_insts, cfg.max_insts);
                    o.measure_insts = std::min(
                        o.measure_insts, cfg.max_insts - o.warmup_insts);
                }
                std::string key;
                for (const auto &w : job.workloads)
                    key += w + "+";
                key += optionsFingerprint(o);
                auto it = oracles.find(key);
                if (it == oracles.end()) {
                    it = oracles
                             .emplace(key,
                                      std::make_unique<FaultOracle>(
                                          FaultOracle::goldenImage(
                                              job.workloads, o)))
                             .first;
                }
                if (stratify) {
                    // The sampler attaches the oracle to each trial it
                    // generates; remember which oracle serves this cell.
                    cell_oracles[job.id] = it->second.get();
                } else {
                    attachFaultOracle(job, it->second.get());
                }
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_batch: golden run failed: %s\n",
                         e.what());
            return 2;
        }
    }

    if (test_crash >= 0) {
        for (JobSpec &job : campaign.jobs) {
            if (job.id != static_cast<std::uint64_t>(test_crash))
                continue;
            auto prev = std::move(job.post_run);
            job.post_run = [prev](Simulation &sim, const RunResult &run,
                                  JobResult &res) {
                if (prev)
                    prev(sim, run, res);
                // Die after the work but before the record reaches the
                // journal: under fork this kills one child (retry →
                // quarantine), without fork it kills the whole batch
                // (the --resume test vehicle).
                std::_Exit(9);
            };
        }
    }

    if (list_only) {
        for (const JobSpec &j : campaign.jobs)
            std::printf("%6llu  %s\n",
                        static_cast<unsigned long long>(j.id),
                        j.label.c_str());
        std::printf("%zu jobs\n", campaign.jobs.size());
        return 0;
    }

#if defined(__unix__) || defined(__APPLE__)
    if (!server_sock.empty()) {
        std::signal(SIGPIPE, SIG_IGN);
        std::ofstream sfile;
        if (out_path != "-") {
            sfile.open(out_path);
            if (!sfile) {
                std::fprintf(stderr, "rmtsim_batch: cannot open '%s'\n",
                             out_path.c_str());
                return 2;
            }
        }
        std::ostream &sout = out_path == "-" ? std::cout : sfile;
        try {
            const serve::RemoteCampaignResult r =
                serve::runRemoteCampaign(server_sock, campaign,
                                         sink_opts.include_timing,
                                         sout);
            if (!quiet) {
                std::fprintf(
                    stderr,
                    "%llu rows from rmtsimd (%llu store hits, %llu "
                    "simulated, %llu failed)%s\n",
                    static_cast<unsigned long long>(r.rows),
                    static_cast<unsigned long long>(r.hits),
                    static_cast<unsigned long long>(r.misses),
                    static_cast<unsigned long long>(r.failed),
                    r.draining ? " [daemon draining]" : "");
            }
            if (r.draining || r.rows < campaign.jobs.size())
                return 4;
            return r.failed ? 3 : 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
            return 1;
        }
    }
#endif

    const bool fault_exec = fault_trials > 0 || stratify;
    if (fault_exec && use_fork) {
        // Fork-safety: emit only whole lines, so no half-written
        // buffer exists to be duplicated into a child at fork() time.
        sink_opts.flush_each = true;
    }
    if (want_fsync && out_path != "-")
        sink_opts.fsync_path = out_path;
#if defined(__unix__) || defined(__APPLE__)
    // The heartbeat uses \r redraws; on a redirected stderr that turns
    // into one unreadable megaline, so clamp it to interactive runs.
    if (!::isatty(::fileno(stderr)))
        sink_opts.progress = false;
#endif
    if (stratify)
        sink_opts.progress = false;     // per-round reporting instead
    if (force_progress)
        sink_opts.progress = true;      // --progress beats every clamp

    // Write-ahead result journal: on by default whenever the output is
    // a real file.  --stratify draws its grid adaptively, so it has no
    // stable job list to fingerprint or resume against.
    const bool journal_enabled =
        want_journal && out_path != "-" && !stratify;
    const std::string journal_path = out_path + ".journal";
    std::uint64_t campaign_fp = 0;
    JournalReplay replay;
    if (resume && !journal_enabled) {
        std::fprintf(stderr,
                     "rmtsim_batch: --resume needs the journal (a file "
                     "--out, no --stratify, no --no-journal)\n");
        return 2;
    }
    if (journal_enabled) {
        campaign_fp = campaignFingerprintU64(campaign.jobs);
        if (resume) {
            // Replay before the output file is opened (and truncated):
            // a journal that does not match this invocation must leave
            // everything on disk untouched.
            try {
                replay = replayJournal(journal_path, campaign_fp);
            } catch (const JournalError &e) {
                std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
                return 2;
            }
            if (!replay.note.empty()) {
                warn("journal '%s': %s; the affected trials will "
                     "re-run",
                     journal_path.c_str(), replay.note.c_str());
            }
        }
    }

    std::ofstream file;
    if (out_path != "-") {
        file.open(out_path);
        if (!file) {
            std::fprintf(stderr, "rmtsim_batch: cannot open '%s'\n",
                         out_path.c_str());
            return 2;
        }
    }
    std::ostream &out = out_path == "-" ? std::cout : file;

    std::unique_ptr<JournalWriter> journal;
    if (journal_enabled) {
        JournalWriter::Options jopts;
        jopts.sync_every = journal_sync;
        try {
            if (resume) {
                journal = std::make_unique<JournalWriter>(
                    journal_path, replay, jopts);
            } else {
                journal = std::make_unique<JournalWriter>(
                    journal_path, campaign_fp, jopts);
            }
        } catch (const JournalError &e) {
            std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
            return 1;
        }
    }

    JsonlSink sink(out, sink_opts);
    // Write-ahead order: every fresh record hits the journal before
    // the ordered JSONL sink sees it.  With no journal the decorator
    // is a pass-through.
    JournalingSink jsink(journal.get(), &sink);
    cfg.sink = &jsink;

    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    cfg.stop = &g_stop;

    // The baseline cache is shared across workers (single-flight);
    // baselines use the campaign's budgets but the base machine.
    BaselineCache baseline(base);
    if (!baseline_dir.empty()) {
        baseline.setStore(baseline_dir);
        want_efficiency = true;     // a store implies --efficiency
    }
    if (want_efficiency)
        cfg.baseline = &baseline;

    // Snapshot store for forked fault trials, shared across workers.
    SnapshotCache snapshots;
    if (base.snapshot_every && snapshot_fork)
        cfg.snapshots = &snapshots;

    std::uint64_t total_jobs = 0;
    std::uint64_t failed = 0;
    std::uint64_t quarantined = 0;
    bool interrupted = false;

    if (stratify) {
        SamplerConfig scfg;
        try {
            scfg.kinds = parseFaultKinds(kinds_csv);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
            return 2;
        }
        scfg.windows = windows;
        scfg.batch = batch;
        scfg.max_trials = fault_trials ? fault_trials : 256;
        scfg.ci_width = ci_width;
        scfg.confidence = confidence;
        scfg.max_reg = max_reg;
        // Pair-resident kinds (lvq/lpq/boq) only exist on machines
        // with redundant pairs; drop them from the default kind set
        // as soon as one sampled mode lacks pairs.
        scfg.has_pairs = true;
        for (const SimMode m : modes) {
            if (m != SimMode::Srt && m != SimMode::Crt)
                scfg.has_pairs = false;
        }

        std::vector<StratifiedSampler::Cell> cells;
        for (const JobSpec &j : campaign.jobs) {
            cells.push_back({j.label, j.workloads, j.options,
                             cell_oracles[j.id]});
        }

        try {
            StratifiedSampler sampler(cells, scfg, seed);
            ForkExecutorConfig fcfg;
            fcfg.runner = cfg;
            fcfg.use_fork = use_fork;
            ForkExecutor exec(fcfg);
            for (;;) {
                if (g_stop.load(std::memory_order_relaxed)) {
                    interrupted = true;
                    break;
                }
                const auto jobs = sampler.nextRound();
                if (jobs.empty())
                    break;
                const auto results = exec.run(jobs);
                // A drain mid-round returns only the finished prefix.
                for (std::size_t i = 0; i < results.size(); ++i) {
                    sampler.record(jobs[i], results[i]);
                    failed += !results[i].ok();
                    quarantined += results[i].quarantined;
                }
                total_jobs += results.size();
                if (!quiet) {
                    std::fprintf(
                        stderr,
                        "round %u: %zu trials (%llu total, %llu "
                        "forked)\n",
                        sampler.rounds(), jobs.size(),
                        static_cast<unsigned long long>(total_jobs),
                        static_cast<unsigned long long>(
                            exec.stats().forked));
                }
            }
            if (g_stop.load(std::memory_order_relaxed))
                interrupted = true;
            sink.end();
            // The summary rides in the same .jsonl: one object with
            // per-stratum estimates, intervals and trial counts.
            out << sampler.summaryJson() << "\n";
            out.flush();
            if (!quiet) {
                for (std::size_t c = 0; c < cells.size(); ++c) {
                    const RollupEstimate r = sampler.cellRollup(c);
                    std::fprintf(
                        stderr,
                        "%s: AVF %.4f [%.4f,%.4f]  SDC %.4f "
                        "[%.4f,%.4f]  (%llu trials)\n",
                        cells[c].label.c_str(), r.avf, r.avf_ci.low,
                        r.avf_ci.high, r.sdc_rate, r.sdc_ci.low,
                        r.sdc_ci.high,
                        static_cast<unsigned long long>(r.trials));
                }
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
            return 2;
        }
    } else {
        // Plain and fault campaigns share one resumable flow: replay
        // already-journaled results into the ordered sink, run only
        // the remainder, and journal every fresh record write-ahead.
        sink.begin(campaign);

        std::vector<JobSpec> todo;
        std::vector<std::pair<const JobSpec *, JobResult>> failures;
        std::uint64_t replayed = 0;
        for (const JobSpec &spec : campaign.jobs) {
            const auto it = replay.results.find(spec.id);
            if (it == replay.results.end()) {
                todo.push_back(spec);
                continue;
            }
            // Straight to the JSONL sink, not the journaling
            // decorator: a replayed record must not be re-journaled.
            sink.record(spec, it->second);
            if (!it->second.ok())
                failures.emplace_back(&spec, it->second);
            ++replayed;
        }
        if (resume && !quiet) {
            std::fprintf(
                stderr, "resumed: %llu of %zu jobs replayed from %s\n",
                static_cast<unsigned long long>(replayed),
                campaign.jobs.size(), journal_path.c_str());
        }

        std::vector<JobResult> results;
        if (fault_trials) {
            // Fault campaigns dispatch through the fork executor:
            // every trial is a COW child of a parent-warmed simulator
            // (or an in-process executeJob with --no-fork — identical
            // records).
            ForkExecutorConfig fcfg;
            fcfg.runner = cfg;
            fcfg.use_fork = use_fork;
            ForkExecutor exec(fcfg);
            results = exec.run(todo);
        } else {
            results = runCampaignJobs(todo, cfg);
        }
        // Journal first (write-ahead order holds through the flush),
        // then the ordered sink drains and fsyncs.
        jsink.end();

        std::uint64_t completed = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const JobResult &r = results[i];
            if (r.attempts == 0 && !r.ok() && r.error.empty())
                continue;       // skipped by the stop drain, never ran
            ++completed;
            if (!r.ok())
                failures.emplace_back(&todo[i], r);
        }
        total_jobs = replayed + completed;
        interrupted = g_stop.load(std::memory_order_relaxed) ||
                      total_jobs < campaign.jobs.size();

        failed = failures.size();
        for (const auto &[spec, r] : failures)
            quarantined += r.quarantined;

        if (!interrupted && !failures.empty()) {
            // Structured failure digest, same .jsonl-resident idiom as
            // the stratified summary: what failed, why, and whether it
            // was quarantined, without grepping a million ok records.
            std::sort(failures.begin(), failures.end(),
                      [](const auto &a, const auto &b) {
                          return a.first->id < b.first->id;
                      });
            out << "{\"schema\":\"rmtsim-failures-v1\""
                << ",\"failed\":" << failures.size()
                << ",\"quarantined\":" << quarantined << ",\"jobs\":[";
            for (std::size_t i = 0; i < failures.size(); ++i) {
                const auto &[spec, r] = failures[i];
                if (i)
                    out << ",";
                out << "{\"id\":" << spec->id << ",\"label\":\""
                    << jsonEscape(spec->label) << "\",\"error\":\""
                    << jsonEscape(r.error)
                    << "\",\"attempts\":" << r.attempts
                    << ",\"timed_out\":"
                    << (r.timed_out ? "true" : "false")
                    << ",\"quarantined\":"
                    << (r.quarantined ? "true" : "false") << "}";
            }
            out << "]}\n";
            out.flush();
        }

        if (journal) {
            journal->close();
            // A completed campaign (even a degraded one — its failures
            // are recorded) leaves nothing to resume; only an
            // interrupted run keeps its journal.
            if (!interrupted)
                std::remove(journal_path.c_str());
        }
    }

    if (!quiet) {
        std::string note;
        if (want_efficiency)
            note = " (" + std::to_string(baseline.simulations()) +
                   " baseline sims)";
        if (cfg.snapshots)
            note += " (" + std::to_string(snapshots.producerRuns()) +
                    " snapshot producers)";
        std::fprintf(stderr, "%llu jobs, %llu failed (%llu "
                     "quarantined)%s\n",
                     static_cast<unsigned long long>(total_jobs),
                     static_cast<unsigned long long>(failed),
                     static_cast<unsigned long long>(quarantined),
                     note.c_str());
        if (interrupted && journal_enabled) {
            std::fprintf(stderr,
                         "interrupted — journal kept at %s; rerun the "
                         "same command with --resume\n",
                         journal_path.c_str());
        }
    }
    if (interrupted)
        return 4;
    return failed ? 3 : 0;
}
