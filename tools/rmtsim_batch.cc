/**
 * @file
 * Batch campaign driver: expand a configuration grid, run it over the
 * work-stealing pool, stream one JSON object per job to a .jsonl file.
 *
 *   rmtsim_batch --modes srt,crt --workloads gcc,swim \
 *                --sweep slack=0,32,64 -j 8 --out results.jsonl
 *   rmtsim_batch --modes srt --workloads compress --fault-trials 100 \
 *                --insts 12000 --warmup 0 -j 8 --out faults.jsonl
 *
 * Job ids are assigned in grid order and results are emitted in id
 * order, so the output file is deterministic and independent of -j
 * (use --no-timing to drop the wall-clock field and make runs
 * byte-for-byte diffable).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "avf/sampler.hh"
#include "common/logging.hh"
#include "runner/fork_executor.hh"
#include "runner/runner.hh"
#include "sim/metrics.hh"
#include "workloads/workloads.hh"

using namespace rmt;

namespace
{

void
usage()
{
    std::printf(
        "rmtsim_batch — parallel experiment campaigns over the rmtsim "
        "grid\n"
        "\n"
        "grid:\n"
        "  --modes M,M,...   base | base2 | srt | lockstep | crt "
        "(default srt)\n"
        "  --workloads W,... single-thread mixes, one job per name; "
        "'all' = SPEC95 set\n"
        "  --mix A+B[+C...]  add one multiprogrammed mix "
        "(repeatable)\n"
        "  --sweep K=V,V,... cartesian axis (repeatable); keys: slack "
        "checker storeq lvq lpq rob iq insts warmup ptsq nosc psr ecc "
        "frontend\n"
        "  --fault-trials N  N seeded transient-reg strikes per grid "
        "point (each trial gets an oracle verdict vs a golden run); "
        "with --stratify, the trial budget per stratum\n"
        "  --max-reg N       victim register bound for fault trials "
        "(default 31)\n"
        "  --seed S          campaign seed (default 1)\n"
        "\n"
        "statistical campaigns (src/avf/):\n"
        "  --stratify        stratified sampling over fault kinds x "
        "strike windows with per-stratum AVF estimates\n"
        "  --ci-width W      stop sampling a stratum once its Wilson "
        "interval is narrower than W (0 = fixed budget)\n"
        "  --confidence C    interval confidence (default 0.95)\n"
        "  --windows N       strike windows per kind (default 2)\n"
        "  --batch N         trials per stratum per round (default "
        "16)\n"
        "  --kinds K,K,...   fault kinds to stratify (default: every "
        "kind the machine supports, minus permanent fu)\n"
        "\n"
        "checkpointing:\n"
        "  --snapshot-every N  place a snapshot barrier every N cycles; "
        "fault trials fork from the latest snapshot before their "
        "strike\n"
        "  --no-snapshot-fork  keep the barriers but run every trial "
        "from scratch (timing-identical control for the forked run)\n"
        "  --baseline-cache DIR  persist --efficiency baselines to DIR "
        "keyed by options fingerprint\n"
        "\n"
        "budgets:\n"
        "  --insts N         measured instructions/thread (default "
        "40000)\n"
        "  --warmup N        warm-up instructions/thread (default "
        "20000)\n"
        "  --max-insts N     hard per-job cap on warmup+measure\n"
        "  --timeout-ms N    record jobs slower than this as failed\n"
        "\n"
        "execution:\n"
        "  -j, --jobs N      worker threads (default 1; 0 = all "
        "cores); fault trials instead run through the fork() "
        "executor\n"
        "  --no-fork         run fault trials in-process instead of "
        "as fork()ed children (non-POSIX / sanitizer builds)\n"
        "  --retries N       attempts per job (default 2 = retry "
        "once)\n"
        "  --out FILE        .jsonl output (default '-' = stdout)\n"
        "  --fsync           fsync the output file on close (no torn "
        "records after a crash)\n"
        "  --efficiency      add SMT-efficiency vs shared baseline "
        "cache\n"
        "  --embed-stats     embed the full stats tree in each job "
        "record\n"
        "  --no-timing       omit wall_ms/host (byte-diffable "
        "output)\n"
        "  --quiet           no stderr progress\n"
        "  --progress        force the stderr heartbeat (done/total, "
        "elapsed, ETA)\n"
        "                    even under --stratify\n"
        "  --list            print the expanded job grid and exit\n");
}

std::vector<std::string>
split(const std::string &arg, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, sep))
        out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    SimOptions base;
    base.warmup_insts = 20000;
    base.measure_insts = 40000;

    std::vector<SimMode> modes;
    std::vector<std::vector<std::string>> mixes;
    std::vector<std::pair<std::string, std::vector<std::string>>> sweeps;
    unsigned fault_trials = 0;
    unsigned max_reg = 31;
    std::uint64_t seed = 1;

    RunnerConfig cfg;
    std::string out_path = "-";
    std::string baseline_dir;
    bool want_efficiency = false;
    bool list_only = false;
    bool snapshot_fork = true;
    bool use_fork = true;
    bool want_fsync = false;
    bool quiet = false;
    bool force_progress = false;
    bool stratify = false;
    double ci_width = 0;
    double confidence = 0.95;
    unsigned windows = 2;
    unsigned batch = 16;
    std::string kinds_csv;
    JsonlSink::Options sink_opts;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for " +
                                                arg);
                return argv[++i];
            };
            if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg == "--modes") {
                for (const auto &m : split(next(), ','))
                    modes.push_back(parseMode(m));
            } else if (arg == "--workloads") {
                const auto names = split(next(), ',');
                if (names.size() == 1 && names[0] == "all") {
                    for (const auto &n : spec95Names())
                        mixes.push_back({n});
                } else {
                    for (const auto &n : names)
                        mixes.push_back({n});
                }
            } else if (arg == "--mix") {
                mixes.push_back(split(next(), '+'));
            } else if (arg == "--sweep") {
                const std::string spec = next();
                const auto eq = spec.find('=');
                if (eq == std::string::npos)
                    throw std::invalid_argument("bad --sweep '" + spec +
                                                "' (want key=v1,v2)");
                sweeps.emplace_back(spec.substr(0, eq),
                                    split(spec.substr(eq + 1), ','));
            } else if (arg == "--fault-trials") {
                fault_trials =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--max-reg") {
                max_reg = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--seed") {
                seed = std::stoull(next());
            } else if (arg == "--insts") {
                base.measure_insts = std::stoull(next());
            } else if (arg == "--warmup") {
                base.warmup_insts = std::stoull(next());
            } else if (arg == "--max-insts") {
                cfg.max_insts = std::stoull(next());
            } else if (arg == "--timeout-ms") {
                cfg.timeout_seconds = std::stod(next()) / 1e3;
            } else if (arg == "-j" || arg == "--jobs") {
                cfg.jobs = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--retries") {
                cfg.max_attempts =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--out") {
                out_path = next();
            } else if (arg == "--efficiency") {
                want_efficiency = true;
            } else if (arg == "--embed-stats") {
                base.collect_stats_json = true;
            } else if (arg == "--snapshot-every") {
                base.snapshot_every = std::stoull(next());
            } else if (arg == "--no-snapshot-fork") {
                snapshot_fork = false;
            } else if (arg == "--no-fork") {
                use_fork = false;
            } else if (arg == "--fsync") {
                want_fsync = true;
            } else if (arg == "--stratify") {
                stratify = true;
            } else if (arg == "--ci-width") {
                ci_width = std::stod(next());
            } else if (arg == "--confidence") {
                confidence = std::stod(next());
            } else if (arg == "--windows") {
                windows = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--batch") {
                batch = static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--kinds") {
                kinds_csv = next();
            } else if (arg == "--baseline-cache") {
                baseline_dir = next();
            } else if (arg == "--no-timing") {
                sink_opts.include_timing = false;
            } else if (arg == "--quiet") {
                quiet = true;
                sink_opts.progress = false;
            } else if (arg == "--progress") {
                force_progress = true;
            } else if (arg == "--list") {
                list_only = true;
            } else {
                usage();
                throw std::invalid_argument("unknown argument '" + arg +
                                            "'");
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
        return 2;
    }

    if (modes.empty())
        modes.push_back(SimMode::Srt);

    Campaign campaign;
    try {
        CampaignBuilder builder("batch", seed);
        builder.base(base).modes(modes);
        if (!mixes.empty())
            builder.mixes(mixes);
        for (const auto &[key, values] : sweeps)
            builder.sweep(key, values);
        // Stratified campaigns draw their own faults per stratum; the
        // grid expansion then only provides the cells (one job per
        // grid point, faultless).
        if (fault_trials && !stratify)
            builder.transientRegTrials(fault_trials, max_reg);
        campaign = builder.build();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
        return 2;
    }

    // Every fault trial gets an oracle verdict: one golden (fault-free)
    // run per distinct (mix, effective options) point, shared by all of
    // that point's trials.  The golden uses the same capped budgets the
    // trials will actually run under, or the memory comparison would
    // flag the budget difference as corruption.
    std::map<std::string, std::unique_ptr<FaultOracle>> oracles;
    std::vector<const FaultOracle *> cell_oracles(campaign.jobs.size(),
                                                  nullptr);
    if (fault_trials || stratify) {
        try {
            for (JobSpec &job : campaign.jobs) {
                if (job.faults.empty() && !stratify)
                    continue;
                SimOptions o = job.options;
                if (cfg.max_insts) {
                    o.warmup_insts =
                        std::min(o.warmup_insts, cfg.max_insts);
                    o.measure_insts = std::min(
                        o.measure_insts, cfg.max_insts - o.warmup_insts);
                }
                std::string key;
                for (const auto &w : job.workloads)
                    key += w + "+";
                key += optionsFingerprint(o);
                auto it = oracles.find(key);
                if (it == oracles.end()) {
                    it = oracles
                             .emplace(key,
                                      std::make_unique<FaultOracle>(
                                          FaultOracle::goldenImage(
                                              job.workloads, o)))
                             .first;
                }
                if (stratify) {
                    // The sampler attaches the oracle to each trial it
                    // generates; remember which oracle serves this cell.
                    cell_oracles[job.id] = it->second.get();
                } else {
                    attachFaultOracle(job, it->second.get());
                }
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_batch: golden run failed: %s\n",
                         e.what());
            return 2;
        }
    }

    if (list_only) {
        for (const JobSpec &j : campaign.jobs)
            std::printf("%6llu  %s\n",
                        static_cast<unsigned long long>(j.id),
                        j.label.c_str());
        std::printf("%zu jobs\n", campaign.jobs.size());
        return 0;
    }

    const bool fault_exec = fault_trials > 0 || stratify;
    if (fault_exec && use_fork) {
        // Fork-safety: emit only whole lines, so no half-written
        // buffer exists to be duplicated into a child at fork() time.
        sink_opts.flush_each = true;
    }
    if (want_fsync && out_path != "-")
        sink_opts.fsync_path = out_path;
    if (stratify)
        sink_opts.progress = false;     // per-round reporting instead
    if (force_progress)
        sink_opts.progress = true;      // --progress beats both overrides

    std::ofstream file;
    if (out_path != "-") {
        file.open(out_path);
        if (!file) {
            std::fprintf(stderr, "rmtsim_batch: cannot open '%s'\n",
                         out_path.c_str());
            return 2;
        }
    }
    std::ostream &out = out_path == "-" ? std::cout : file;

    JsonlSink sink(out, sink_opts);
    cfg.sink = &sink;

    // The baseline cache is shared across workers (single-flight);
    // baselines use the campaign's budgets but the base machine.
    BaselineCache baseline(base);
    if (!baseline_dir.empty()) {
        baseline.setStore(baseline_dir);
        want_efficiency = true;     // a store implies --efficiency
    }
    if (want_efficiency)
        cfg.baseline = &baseline;

    // Snapshot store for forked fault trials, shared across workers.
    SnapshotCache snapshots;
    if (base.snapshot_every && snapshot_fork)
        cfg.snapshots = &snapshots;

    std::uint64_t total_jobs = 0;
    std::uint64_t failed = 0;

    if (stratify) {
        SamplerConfig scfg;
        try {
            scfg.kinds = parseFaultKinds(kinds_csv);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
            return 2;
        }
        scfg.windows = windows;
        scfg.batch = batch;
        scfg.max_trials = fault_trials ? fault_trials : 256;
        scfg.ci_width = ci_width;
        scfg.confidence = confidence;
        scfg.max_reg = max_reg;
        // Pair-resident kinds (lvq/lpq/boq) only exist on machines
        // with redundant pairs; drop them from the default kind set
        // as soon as one sampled mode lacks pairs.
        scfg.has_pairs = true;
        for (const SimMode m : modes) {
            if (m != SimMode::Srt && m != SimMode::Crt)
                scfg.has_pairs = false;
        }

        std::vector<StratifiedSampler::Cell> cells;
        for (const JobSpec &j : campaign.jobs) {
            cells.push_back({j.label, j.workloads, j.options,
                             cell_oracles[j.id]});
        }

        try {
            StratifiedSampler sampler(cells, scfg, seed);
            ForkExecutorConfig fcfg;
            fcfg.runner = cfg;
            fcfg.use_fork = use_fork;
            ForkExecutor exec(fcfg);
            for (;;) {
                const auto jobs = sampler.nextRound();
                if (jobs.empty())
                    break;
                const auto results = exec.run(jobs);
                for (std::size_t i = 0; i < jobs.size(); ++i) {
                    sampler.record(jobs[i], results[i]);
                    failed += !results[i].ok();
                }
                total_jobs += jobs.size();
                if (!quiet) {
                    std::fprintf(
                        stderr,
                        "round %u: %zu trials (%llu total, %llu "
                        "forked)\n",
                        sampler.rounds(), jobs.size(),
                        static_cast<unsigned long long>(total_jobs),
                        static_cast<unsigned long long>(
                            exec.stats().forked));
                }
            }
            sink.end();
            // The summary rides in the same .jsonl: one object with
            // per-stratum estimates, intervals and trial counts.
            out << sampler.summaryJson() << "\n";
            out.flush();
            if (!quiet) {
                for (std::size_t c = 0; c < cells.size(); ++c) {
                    const RollupEstimate r = sampler.cellRollup(c);
                    std::fprintf(
                        stderr,
                        "%s: AVF %.4f [%.4f,%.4f]  SDC %.4f "
                        "[%.4f,%.4f]  (%llu trials)\n",
                        cells[c].label.c_str(), r.avf, r.avf_ci.low,
                        r.avf_ci.high, r.sdc_rate, r.sdc_ci.low,
                        r.sdc_ci.high,
                        static_cast<unsigned long long>(r.trials));
                }
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_batch: %s\n", e.what());
            return 2;
        }
    } else if (fault_trials) {
        // Fault campaigns dispatch through the fork executor: every
        // trial is a COW child of a parent-warmed simulator (or an
        // in-process executeJob with --no-fork — identical records).
        sink.begin(campaign);
        ForkExecutorConfig fcfg;
        fcfg.runner = cfg;
        fcfg.use_fork = use_fork;
        ForkExecutor exec(fcfg);
        const auto results = exec.run(campaign.jobs);
        sink.end();
        total_jobs = results.size();
        for (const auto &r : results)
            failed += !r.ok();
    } else {
        const auto results = runCampaign(campaign, cfg);
        total_jobs = results.size();
        for (const auto &r : results)
            failed += !r.ok();
    }

    if (!quiet) {
        std::string note;
        if (want_efficiency)
            note = " (" + std::to_string(baseline.simulations()) +
                   " baseline sims)";
        if (cfg.snapshots)
            note += " (" + std::to_string(snapshots.producerRuns()) +
                    " snapshot producers)";
        std::fprintf(stderr, "%llu jobs, %llu failed%s\n",
                     static_cast<unsigned long long>(total_jobs),
                     static_cast<unsigned long long>(failed),
                     note.c_str());
    }
    return failed ? 1 : 0;
}
