#!/bin/sh
# Tier-1 gate plus the sanitizer pass, in one command:
#
#   tools/check.sh            # build + full ctest, then TSan on the
#                             # `sanitize`-labelled tests
#   tools/check.sh --fast     # tier-1 only (skip the TSan build)
#
# Uses build/ for the normal tree and build-tsan/ for the instrumented
# one so the two configurations never fight over a cache.
set -e

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build -j "$jobs" --output-on-failure

if [ "$1" = "--fast" ]; then
    echo "check.sh: tier-1 OK (TSan pass skipped)"
    exit 0
fi

echo "== sanitize: thread-sanitizer build =="
cmake -B build-tsan -S . -DRMT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"

echo "== sanitize: ctest -L sanitize =="
ctest --test-dir build-tsan -j "$jobs" -L sanitize --output-on-failure

echo "check.sh: all checks OK"
