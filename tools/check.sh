#!/bin/sh
# Tier-1 gate plus the sanitizer and perf passes, in one command:
#
#   tools/check.sh            # build + full ctest, then TSan, ASan and
#                             # UBSan on the `sanitize`-labelled tests,
#                             # the perf smoke (KIPS regression gate),
#                             # and the whole-sphere fault smoke
#                             # (zero-SDC gate)
#   tools/check.sh --fast     # tier-1 only (skip sanitizers + smokes)
#
# Uses build/ for the normal tree and build-{tsan,asan,ubsan}/ for the
# instrumented ones so the configurations never fight over a cache.
set -e

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build -j "$jobs" --output-on-failure

if [ "$1" = "--fast" ]; then
    echo "check.sh: tier-1 OK (sanitizer + perf passes skipped)"
    exit 0
fi

echo "== sanitize: thread-sanitizer build =="
cmake -B build-tsan -S . -DRMT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"

echo "== sanitize: ctest -L sanitize (TSan) =="
ctest --test-dir build-tsan -j "$jobs" -L sanitize --output-on-failure

echo "== sanitize: address-sanitizer build =="
cmake -B build-asan -S . -DRMT_SANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"

echo "== sanitize: ctest -L sanitize (ASan, pool allocator) =="
ctest --test-dir build-asan -j "$jobs" -L sanitize --output-on-failure

echo "== sanitize: undefined-behavior-sanitizer build =="
cmake -B build-ubsan -S . -DRMT_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$jobs"

echo "== sanitize: ctest -L sanitize (UBSan) =="
ctest --test-dir build-ubsan -j "$jobs" -L sanitize --output-on-failure

echo "== perf: KIPS smoke vs BENCH_perf.json =="
if [ -f BENCH_perf.json ]; then
    cmake --build build -j "$jobs" --target bench_perf >/dev/null
    ./build/bench/bench_perf --baseline BENCH_perf.json --max-regress 10
else
    echo "check.sh: BENCH_perf.json missing; run tools/bench_perf.sh" >&2
    exit 1
fi

echo "== fault smoke: whole-sphere zero-SDC gate (SRT + recovery) =="
cmake --build build -j "$jobs" --target rmtsim_faultsmoke \
    rmtsim_report >/dev/null
./build/tools/rmtsim_faultsmoke --trials 2 --out build/fault_smoke.jsonl
./build/tools/rmtsim_report --coverage build/fault_smoke.jsonl

echo "== ckpt: snapshot round-trip determinism gate =="
cmake --build build -j "$jobs" --target rmtsim_cli rmtsim_batch >/dev/null
ckpt_args="--mode srt --workloads gcc --warmup 2000 --insts 8000
           --snapshot-every 1500"
./build/tools/rmtsim $ckpt_args --stats-json build/ckpt_straight.json \
    > build/ckpt_straight.txt
./build/tools/rmtsim $ckpt_args --save-snapshot build/ckpt.bin \
    > build/ckpt_save.txt
./build/tools/rmtsim $ckpt_args --restore-snapshot build/ckpt.bin \
    --stats-json build/ckpt_restore.json > build/ckpt_restore.txt
diff build/ckpt_straight.txt build/ckpt_save.txt
diff build/ckpt_straight.txt build/ckpt_restore.txt
# The exported stats document (counters, groups, and the commit-slot
# attribution) must survive restore byte-for-byte, host timing aside.
sed 's/,"host":{[^}]*}//' build/ckpt_straight.json \
    > build/ckpt_straight_nohost.json
sed 's/,"host":{[^}]*}//' build/ckpt_restore.json \
    > build/ckpt_restore_nohost.json
diff build/ckpt_straight_nohost.json build/ckpt_restore_nohost.json

echo "== ckpt: snapshot-forked fault campaign vs from-scratch =="
# rmtsim_faultsmoke runs with recovery on, which snapshots refuse, so
# the forked smoke goes through rmtsim_batch.  Records must match the
# from-scratch control byte-for-byte once the snapshot bookkeeping
# ("extra") is stripped, and at least one trial must actually fork.
ckpt_batch="--modes srt --workloads gcc,compress --fault-trials 2
            --warmup 500 --insts 5000 --snapshot-every 1500
            --no-timing --quiet"
./build/tools/rmtsim_batch $ckpt_batch --out build/ckpt_forked.jsonl
./build/tools/rmtsim_batch $ckpt_batch --no-snapshot-fork \
    --out build/ckpt_scratch.jsonl
sed 's/,"extra":{[^}]*}//' build/ckpt_forked.jsonl \
    > build/ckpt_forked_stripped.jsonl
diff build/ckpt_forked_stripped.jsonl build/ckpt_scratch.jsonl
grep -q '"snapshot_hit":1' build/ckpt_forked.jsonl

echo "== attribution: conservation gate (all modes, gcc+compress) =="
# Every record's commit-slot buckets must sum to cycles * commit_width;
# rmtsim_report --attribution verifies the invariant on each record and
# exits nonzero on any violation.  The ctest label re-runs the unit
# suite (conservation per core, -j invariance, pipetrace validity).
ctest --test-dir build -j "$jobs" -L attribution --output-on-failure
attr_args="--modes base,base2,srt,lockstep,crt --workloads gcc,compress
           --warmup 500 --insts 4000 --embed-stats --no-timing --quiet"
./build/tools/rmtsim_batch $attr_args --out build/attr.jsonl
./build/tools/rmtsim_report --attribution build/attr.jsonl

echo "== resilience: kill mid-campaign, --resume, byte-identical =="
# A deterministic crash (the hidden --test-crash-trial hook) kills the
# whole batch process mid-campaign in --no-fork mode.  The write-ahead
# journal must carry every pre-crash record, the resumed run must
# produce a .jsonl byte-identical to an uninterrupted control, and the
# journal must be gone after the clean finish.
res_args="--modes base,srt --workloads gcc,compress --warmup 500
          --insts 4000 --no-timing --quiet --no-fork"
./build/tools/rmtsim_batch $res_args --out build/res_control.jsonl
rc=0
./build/tools/rmtsim_batch $res_args --journal-sync 1 \
    --test-crash-trial 2 --out build/res_crash.jsonl || rc=$?
[ "$rc" -ne 0 ]                         # the batch really died
[ -f build/res_crash.jsonl.journal ]    # resumable state left behind
./build/tools/rmtsim_batch $res_args --resume --out build/res_crash.jsonl
diff build/res_control.jsonl build/res_crash.jsonl
[ ! -f build/res_crash.jsonl.journal ]  # journal removed on completion

echo "== resilience: crashing fault trial is quarantined (exit 3) =="
# Under the fork() executor the same hook kills one child per attempt:
# the trial must be retried, quarantined, and recorded — the campaign
# finishes degraded (exit 3) with a structured failures record instead
# of dying.
rc=0
./build/tools/rmtsim_batch --modes srt --workloads gcc --fault-trials 2 \
    --warmup 500 --insts 4000 --no-timing --quiet --test-crash-trial 0 \
    --out build/res_quarantine.jsonl || rc=$?
[ "$rc" -eq 3 ]
grep -q '"quarantined":true' build/res_quarantine.jsonl
grep -q '"schema":"rmtsim-failures-v1"' build/res_quarantine.jsonl
./build/tools/rmtsim_report --failures build/res_quarantine.jsonl
[ ! -f build/res_quarantine.jsonl.journal ]

echo "== avf: stratified fork()-executor campaign vs --no-fork =="
# The fork()-per-trial executor must be verdict-identical to the
# in-process path: same trials, same records, byte-for-byte, and the
# stream must end with the per-stratum avf_summary record.
avf_args="--modes srt --workloads gcc,compress --stratify
          --kinds reg,pc --windows 2 --batch 2 --fault-trials 2
          --warmup 500 --insts 4000 --no-timing --quiet"
./build/tools/rmtsim_batch $avf_args --out build/avf_forked.jsonl
./build/tools/rmtsim_batch $avf_args --no-fork \
    --out build/avf_inproc.jsonl
diff build/avf_forked.jsonl build/avf_inproc.jsonl
grep -q '"avf_summary"' build/avf_forked.jsonl

echo "== serve: daemon resubmission is byte-identical and >=5x faster =="
# Start rmtsimd on a fresh store, run the same client campaign twice:
# the cold pass simulates every trial, the warm pass must be all store
# hits — byte-identical output, at least 5x faster wall clock — then
# the daemon must drain cleanly on SIGTERM (socket + pid file gone).
cmake --build build -j "$jobs" --target rmtsimd >/dev/null
rm -rf build/serve_gate
mkdir -p build/serve_gate
./build/tools/rmtsimd --socket build/serve_gate/d.sock \
    --store build/serve_gate/store --pid-file build/serve_gate/d.pid \
    -j "$jobs" &
for _ in $(seq 50); do
    [ -S build/serve_gate/d.sock ] && break
    sleep 0.1
done
serve_args="--modes base,srt,crt --workloads gcc,compress --warmup 500
            --insts 4000 --no-timing --quiet
            --server build/serve_gate/d.sock"
t0=$(date +%s%N)
./build/tools/rmtsim_batch $serve_args --out build/serve_gate/cold.jsonl
t1=$(date +%s%N)
./build/tools/rmtsim_batch $serve_args --out build/serve_gate/warm.jsonl
t2=$(date +%s%N)
diff build/serve_gate/cold.jsonl build/serve_gate/warm.jsonl
cold_ns=$((t1 - t0)); warm_ns=$((t2 - t1))
echo "serve gate: cold ${cold_ns}ns, warm ${warm_ns}ns"
[ $((warm_ns * 5)) -le "$cold_ns" ]
./build/tools/rmtsim_report --serve-summary build/serve_gate/d.sock \
    | grep -q 'hits'
kill -TERM "$(cat build/serve_gate/d.pid)"
wait
[ ! -e build/serve_gate/d.sock ]
[ ! -e build/serve_gate/d.pid ]

echo "check.sh: all checks OK"
