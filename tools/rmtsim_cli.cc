/**
 * @file
 * Command-line driver: run any workload mix under any of the paper's
 * configurations without writing C++.
 *
 *   rmtsim --mode srt --workloads gcc,swim --insts 40000 --stats
 *   rmtsim --mode crt --workloads gcc,go,fpppp,swim --checker 8
 *   rmtsim --mode srt --workloads compress --fault reg:3000:0:3:5
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/pipetrace.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace rmt;

namespace
{

void
usage()
{
    std::printf(
        "rmtsim — redundant multithreading simulator (ISCA 2002 repro)\n"
        "\n"
        "  --mode M          base | base2 | srt | lockstep | crt "
        "(default base)\n"
        "  --workloads W     comma-separated kernels (default gcc); "
        "'all' lists\n"
        "  --insts N         measured instructions/thread (default "
        "40000)\n"
        "  --warmup N        warm-up instructions/thread (default "
        "20000)\n"
        "  --checker N       lockstep checker penalty (default 8)\n"
        "  --ptsq            per-thread store queues\n"
        "  --nosc            disable store comparison (SRT+nosc)\n"
        "  --no-psr          disable preferential space redundancy\n"
        "  --no-ecc          disable LVQ ECC\n"
        "  --lpq-ecc         ECC-protect the line-prediction queue\n"
        "  --boq-ecc         ECC-protect the branch-outcome queue\n"
        "  --no-merge-ecc    drop merge-buffer ECC (outside the "
        "sphere!)\n"
        "  --hang N          watchdog: abort after N cycles with no "
        "commit (0 = off)\n"
        "  --frontend F      lpq | boq | sharedlp (trailing fetch)\n"
        "  --slack N         slack fetch distance\n"
        "  --fault SPEC      reg:<cycle>:<core>:<tid>:<reg>:<bit> | "
        "lvq:<cycle>:<core>:<tid> |\n"
        "                    fu:<cycle>:<core>:<unit>:<maskbit> | "
        "KIND:<cycle>:<core>:<tid>:<bit>\n"
        "                    with KIND one of sqd sqa lpq boq pc dec "
        "mb\n"
        "  --recover         checkpoint-based fault recovery\n"
        "  --recover-interval N   checkpoint cadence (insts)\n"
        "  --trace FILE      write the commit trace to FILE ('-' = "
        "stdout)\n"
        "  --trace-max N     trace line cap per core (default 10000)\n"
        "  --pipetrace FILE  per-instruction pipeline trace as Chrome\n"
        "                    trace-event JSON for Perfetto ('-' = "
        "stdout)\n"
        "  --pipetrace-max N cap on emitted stage events (0 = "
        "unbounded)\n"
        "  --efficiency      also report SMT-Efficiency vs single-"
        "thread base\n"
        "  --cosim           enable architectural co-simulation "
        "checking\n"
        "  --stats           dump per-core statistics\n"
        "  --stats-json FILE full stats tree as JSON ('-' = stdout)\n"
        "  --timeline FILE   cycle-sampled queue/slack timeline as "
        "JSONL ('-' = stdout)\n"
        "  --timeline-interval N  cycles between samples (default "
        "1000)\n"
        "  --snapshot-every N     place a snapshot barrier every N "
        "cycles\n"
        "  --save-snapshot FILE   save a snapshot at each barrier "
        "(FILE holds the last one; needs --snapshot-every)\n"
        "  --restore-snapshot FILE  restore FILE, then run to the "
        "budget\n");
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

/**
 * Resolve an output spec: "-" means stdout, anything else opens a
 * file (kept alive by @p owned).
 */
std::ostream *
openOut(const std::string &path, std::vector<std::unique_ptr<std::ofstream>> &owned)
{
    if (path == "-")
        return &std::cout;
    owned.push_back(std::make_unique<std::ofstream>(path));
    if (!*owned.back())
        fatal("cannot open '%s' for writing", path.c_str());
    return owned.back().get();
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts;
    opts.mode = SimMode::Base;
    opts.warmup_insts = 20000;
    opts.measure_insts = 40000;
    std::vector<std::string> workloads{"gcc"};
    std::vector<std::string> fault_specs;
    bool want_stats = false;
    bool want_efficiency = false;
    std::string trace_file;
    std::uint64_t trace_max = 10000;
    std::string pipetrace_file;
    std::uint64_t pipetrace_max = 0;
    std::string stats_json_file;
    std::string timeline_file;
    std::string save_snapshot_file;
    std::string restore_snapshot_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--mode") {
            const std::string m = next();
            if (m == "base")
                opts.mode = SimMode::Base;
            else if (m == "base2")
                opts.mode = SimMode::Base2;
            else if (m == "srt")
                opts.mode = SimMode::Srt;
            else if (m == "lockstep")
                opts.mode = SimMode::Lockstep;
            else if (m == "crt")
                opts.mode = SimMode::Crt;
            else
                fatal("unknown mode '%s'", m.c_str());
        } else if (arg == "--workloads") {
            workloads = splitCommas(next());
        } else if (arg == "--insts") {
            opts.measure_insts = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--warmup") {
            opts.warmup_insts = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--checker") {
            opts.checker_penalty =
                static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--ptsq") {
            opts.per_thread_store_queues = true;
        } else if (arg == "--nosc") {
            opts.store_comparison = false;
        } else if (arg == "--no-psr") {
            opts.preferential_space_redundancy = false;
        } else if (arg == "--no-ecc") {
            opts.lvq_ecc = false;
        } else if (arg == "--lpq-ecc") {
            opts.lpq_ecc = true;
        } else if (arg == "--boq-ecc") {
            opts.boq_ecc = true;
        } else if (arg == "--no-merge-ecc") {
            opts.merge_buffer_ecc = false;
        } else if (arg == "--hang") {
            opts.hang_cycles =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--slack") {
            opts.slack_fetch =
                static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--frontend") {
            const std::string f = next();
            if (f == "lpq")
                opts.trailing_fetch =
                    TrailingFetchMode::LinePredictionQueue;
            else if (f == "boq")
                opts.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
            else if (f == "sharedlp")
                opts.trailing_fetch =
                    TrailingFetchMode::SharedLinePredictor;
            else
                fatal("unknown frontend '%s'", f.c_str());
        } else if (arg == "--fault") {
            fault_specs.push_back(next());
        } else if (arg == "--recover") {
            opts.recovery = true;
        } else if (arg == "--recover-interval") {
            opts.recovery_params.interval_insts =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--cosim") {
            opts.cosim = true;
        } else if (arg == "--efficiency") {
            want_efficiency = true;
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--trace-max") {
            trace_max = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--pipetrace") {
            pipetrace_file = next();
        } else if (arg == "--pipetrace-max") {
            pipetrace_max = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--stats-json") {
            stats_json_file = next();
        } else if (arg == "--timeline") {
            timeline_file = next();
        } else if (arg == "--timeline-interval") {
            opts.timeline_interval =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--snapshot-every") {
            opts.snapshot_every =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--save-snapshot") {
            save_snapshot_file = next();
        } else if (arg == "--restore-snapshot") {
            restore_snapshot_file = next();
        } else {
            usage();
            fatal("unknown argument '%s'", arg.c_str());
        }
    }

    if (workloads.size() == 1 && workloads[0] == "all") {
        for (const auto &name : spec95Names())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    // Sampling on with a default cadence when only --timeline given.
    if (!timeline_file.empty() && opts.timeline_interval == 0)
        opts.timeline_interval = 1000;

    if (!save_snapshot_file.empty() && opts.snapshot_every == 0)
        fatal("--save-snapshot needs --snapshot-every to place the "
              "barriers it saves at");

    std::vector<std::unique_ptr<std::ofstream>> owned_streams;
    Simulation sim(workloads, opts);
    if (!restore_snapshot_file.empty()) {
        try {
            sim.restoreSnapshot(restore_snapshot_file);
        } catch (const std::exception &e) {
            fatal("cannot restore '%s': %s",
                  restore_snapshot_file.c_str(), e.what());
        }
    }
    if (!save_snapshot_file.empty()) {
        // Overwrite at every barrier: the file ends up holding the
        // last snapshot of the run.
        sim.setSnapshotHook([&save_snapshot_file](Cycle, Simulation &s) {
            s.saveSnapshot(save_snapshot_file);
        });
    }
    if (!trace_file.empty()) {
        std::ostream *os = openOut(trace_file, owned_streams);
        for (unsigned c = 0; c < sim.chip().numCores(); ++c)
            sim.chip().cpu(c).setCommitTrace(os, trace_max);
    }
    std::unique_ptr<PipeTracer> pipetracer;
    if (!pipetrace_file.empty()) {
        std::ostream *os = openOut(pipetrace_file, owned_streams);
        pipetracer = std::make_unique<PipeTracer>(*os, pipetrace_max);
        for (unsigned c = 0; c < sim.chip().numCores(); ++c)
            sim.chip().cpu(c).setPipeTracer(pipetracer.get());
    }
    for (const auto &spec : fault_specs) {
        try {
            sim.faultInjector().schedule(parseFaultSpec(spec));
        } catch (const std::invalid_argument &e) {
            fatal("bad --fault spec '%s': %s", spec.c_str(), e.what());
        }
    }

    const RunResult r = sim.run();
    if (pipetracer) {
        pipetracer->finish();
        if (pipetracer->dropped()) {
            std::fprintf(stderr,
                         "pipetrace: event cap dropped %llu "
                         "instructions (raise --pipetrace-max)\n",
                         static_cast<unsigned long long>(
                             pipetracer->dropped()));
        }
    }

    std::printf("%-10s %8s %12s %12s\n", "thread", "ipc", "committed",
                "cycles");
    for (const auto &t : r.threads) {
        std::printf("%-10s %8.3f %12llu %12llu\n", t.workload.c_str(),
                    t.ipc, static_cast<unsigned long long>(t.committed),
                    static_cast<unsigned long long>(t.cycles));
    }
    std::printf("total cycles %llu, completed %s, outcome %s\n",
                static_cast<unsigned long long>(r.total_cycles),
                r.completed ? "yes" : "NO", outcomeName(r.outcome));
    if (opts.mode == SimMode::Srt || opts.mode == SimMode::Crt) {
        std::printf("store pairs compared %llu, mismatches %llu, "
                    "detections %llu, recoveries %llu\n",
                    static_cast<unsigned long long>(r.store_comparisons),
                    static_cast<unsigned long long>(r.store_mismatches),
                    static_cast<unsigned long long>(r.detections),
                    static_cast<unsigned long long>(r.recoveries));
        const auto &rm = sim.chip().redundancy();
        for (std::size_t i = 0; i < rm.numPairs(); ++i) {
            const auto &events = rm.pair(i).detections();
            const std::size_t shown = std::min<std::size_t>(5,
                                                            events.size());
            for (std::size_t e = 0; e < shown; ++e) {
                const auto &d = events[e];
                const char *kind =
                    d.kind == DetectionKind::StoreMismatch
                        ? "store mismatch"
                        : d.kind == DetectionKind::LvqAddrMismatch
                              ? "LVQ address mismatch"
                              : "control divergence";
                std::printf("  pair %zu: %s at cycle %llu\n", i, kind,
                            static_cast<unsigned long long>(d.cycle));
            }
            const std::uint64_t total = rm.pair(i).detectionCount();
            if (total > shown) {
                std::printf("  pair %zu: ... and %llu further "
                            "detections (streams diverged)\n",
                            i,
                            static_cast<unsigned long long>(total -
                                                            shown));
            }
        }
    }

    if (want_efficiency) {
        BaselineCache baseline(opts);
        const auto effs = baseline.efficiencies(r);
        for (std::size_t i = 0; i < effs.size(); ++i) {
            std::printf("efficiency %-10s %.3f\n",
                        r.threads[i].workload.c_str(), effs[i]);
        }
        std::printf("mean SMT-efficiency %.3f\n", meanEfficiency(effs));
    }

    if (want_stats) {
        for (unsigned c = 0; c < sim.chip().numCores(); ++c)
            sim.chip().cpu(c).dumpStats(std::cout);
    }

    if (!stats_json_file.empty()) {
        std::ostream *os = openOut(stats_json_file, owned_streams);
        *os << sim.statsJson(r) << "\n";
    }
    if (!timeline_file.empty() && sim.timeline()) {
        std::ostream *os = openOut(timeline_file, owned_streams);
        sim.timeline()->writeJsonl(*os);
        if (sim.timeline()->dropped()) {
            std::fprintf(stderr,
                         "timeline: ring dropped %llu of %llu samples "
                         "(raise --timeline-interval or the ring cap)\n",
                         static_cast<unsigned long long>(
                             sim.timeline()->dropped()),
                         static_cast<unsigned long long>(
                             sim.timeline()->recorded()));
        }
    }
    return 0;
}
