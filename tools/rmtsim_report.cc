/**
 * @file
 * Summarise a rmtsim_batch .jsonl result stream as the paper's
 * headline tables: per-mode throughput and degradation vs the base
 * machine, optionally broken down per workload mix.
 *
 *   rmtsim_batch --modes base,srt,crt --workloads gcc,swim \
 *                --out results.jsonl
 *   rmtsim_report results.jsonl
 *   rmtsim_report --per-mix --base lockstep results.jsonl
 *
 * With --coverage the stream is treated as a fault campaign instead:
 * trials are grouped by fault kind and summarised as verdict tallies,
 * detection rate, and detection-latency statistics.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hh"

using namespace rmt;

namespace
{

void
usage()
{
    std::printf(
        "rmtsim_report — per-mode degradation tables from batch "
        ".jsonl results\n"
        "\n"
        "  rmtsim_report [options] FILE   ('-' = stdin)\n"
        "\n"
        "  --base MODE       degradation reference mode (default "
        "base)\n"
        "  --per-mix         also print the per-workload-mix table\n"
        "  --coverage        fault-campaign mode: per-fault-kind "
        "verdicts,\n"
        "                    detection rate, latency histogram, and "
        "AVF\n"
        "                    with Wilson intervals; mixed-mode streams "
        "also\n"
        "                    get a per-mode table flagging kinds "
        "whose\n"
        "                    intervals still overlap between modes\n"
        "  --confidence C    interval confidence for --coverage "
        "(default\n"
        "                    0.95)\n"
        "  --snapshots       snapshot-forking summary: hit rate, "
        "cycles\n"
        "                    saved, snapshot image sizes\n"
        "  --failures        failure digest of a degraded campaign "
        "(batch\n"
        "                    exit 3): per-error tally and the failed "
        "jobs\n"
        "                    in id order, quarantined crashes "
        "flagged\n"
        "  --attribution     commit-slot cycle accounting from "
        "--embed-stats\n"
        "                    records: per-mode slot mix and the "
        "degradation\n"
        "                    vs base decomposed into stall causes; "
        "verifies\n"
        "                    the conservation invariant on every "
        "record and\n"
        "                    exits 1 on violation\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ReportOptions opts;
    std::string path;
    bool coverage = false;
    bool snapshots = false;
    bool attribution = false;
    bool failures = false;
    double confidence = 0.95;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--base") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rmtsim_report: missing value for "
                             "--base\n");
                return 2;
            }
            opts.base_mode = argv[++i];
        } else if (arg == "--per-mix") {
            opts.per_mix = true;
        } else if (arg == "--coverage") {
            coverage = true;
        } else if (arg == "--confidence") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rmtsim_report: missing value for "
                             "--confidence\n");
                return 2;
            }
            confidence = std::atof(argv[++i]);
            if (confidence <= 0 || confidence >= 1) {
                std::fprintf(stderr,
                             "rmtsim_report: --confidence must be in "
                             "(0, 1)\n");
                return 2;
            }
        } else if (arg == "--snapshots") {
            snapshots = true;
        } else if (arg == "--failures") {
            failures = true;
        } else if (arg == "--attribution") {
            attribution = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usage();
            std::fprintf(stderr,
                         "rmtsim_report: unknown argument '%s'\n",
                         arg.c_str());
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr,
                         "rmtsim_report: more than one input file\n");
            return 2;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream file;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::fprintf(stderr, "rmtsim_report: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
    }
    std::istream &in = path == "-" ? std::cin : file;

    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);

    unsigned bad_lines = 0;
    const std::vector<JsonValue> records =
        parseJsonlLines(lines, bad_lines);
    if (bad_lines) {
        std::fprintf(stderr, "rmtsim_report: skipped %u malformed "
                     "line%s\n", bad_lines, bad_lines == 1 ? "" : "s");
    }
    if (records.empty()) {
        std::fprintf(stderr, "rmtsim_report: no records in '%s'\n",
                     path.c_str());
        return 1;
    }

    if (failures) {
        const FailuresReport report = buildFailuresReport(records);
        std::fputs(formatFailuresReport(report).c_str(), stdout);
        if (coverage || snapshots || attribution)
            std::fputs("\n", stdout);
        else
            return 0;
    }
    if (snapshots) {
        const SnapshotReport report = buildSnapshotReport(records);
        std::fputs(formatSnapshotReport(report).c_str(), stdout);
        if (coverage)
            std::fputs("\n", stdout);
        else
            return 0;
    }
    if (attribution) {
        const AttributionReport report =
            buildAttributionReport(records, opts);
        std::fputs(formatAttributionReport(report).c_str(), stdout);
        if (report.conservation_violations) {
            std::fprintf(stderr,
                         "rmtsim_report: conservation invariant "
                         "violated in %u record%s\n",
                         report.conservation_violations,
                         report.conservation_violations == 1 ? ""
                                                             : "s");
            return 1;
        }
        if (coverage)
            std::fputs("\n", stdout);
        else
            return 0;
    }
    if (coverage) {
        const CoverageReport report =
            buildCoverageReport(records, confidence);
        std::fputs(formatCoverageReport(report).c_str(), stdout);
        return 0;
    }
    const CampaignReport report = buildReport(records, opts);
    std::fputs(formatReport(report, opts).c_str(), stdout);
    return 0;
}
