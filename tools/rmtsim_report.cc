/**
 * @file
 * Summarise a rmtsim_batch .jsonl result stream as the paper's
 * headline tables: per-mode throughput and degradation vs the base
 * machine, optionally broken down per workload mix.
 *
 *   rmtsim_batch --modes base,srt,crt --workloads gcc,swim \
 *                --out results.jsonl
 *   rmtsim_report results.jsonl
 *   rmtsim_report --per-mix --base lockstep results.jsonl
 *
 * With --coverage the stream is treated as a fault campaign instead:
 * trials are grouped by fault kind and summarised as verdict tallies,
 * detection rate, and detection-latency statistics.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "obs/report.hh"
#include "serve/client.hh"

using namespace rmt;

namespace
{

void
usage()
{
    std::printf(
        "rmtsim_report — per-mode degradation tables from batch "
        ".jsonl results\n"
        "\n"
        "  rmtsim_report [options] FILE   ('-' = stdin)\n"
        "\n"
        "  --base MODE       degradation reference mode (default "
        "base)\n"
        "  --per-mix         also print the per-workload-mix table\n"
        "  --coverage        fault-campaign mode: per-fault-kind "
        "verdicts,\n"
        "                    detection rate, latency histogram, and "
        "AVF\n"
        "                    with Wilson intervals; mixed-mode streams "
        "also\n"
        "                    get a per-mode table flagging kinds "
        "whose\n"
        "                    intervals still overlap between modes\n"
        "  --confidence C    interval confidence for --coverage "
        "(default\n"
        "                    0.95)\n"
        "  --snapshots       snapshot-forking summary: hit rate, "
        "cycles\n"
        "                    saved, snapshot image sizes\n"
        "  --failures        failure digest of a degraded campaign "
        "(batch\n"
        "                    exit 3): per-error tally and the failed "
        "jobs\n"
        "                    in id order, quarantined crashes "
        "flagged\n"
        "  --attribution     commit-slot cycle accounting from "
        "--embed-stats\n"
        "                    records: per-mode slot mix and the "
        "degradation\n"
        "                    vs base decomposed into stall causes; "
        "verifies\n"
        "                    the conservation invariant on every "
        "record and\n"
        "                    exits 1 on violation\n"
        "  --serve-summary SOCK\n"
        "                    query the rmtsimd at SOCK instead of "
        "reading a\n"
        "                    file: result-store hit/miss/in-flight "
        "counters,\n"
        "                    stored bytes, and per-mode row counts\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ReportOptions opts;
    std::string path;
    std::string serve_sock;
    bool coverage = false;
    bool snapshots = false;
    bool attribution = false;
    bool failures = false;
    double confidence = 0.95;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--base") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rmtsim_report: missing value for "
                             "--base\n");
                return 2;
            }
            opts.base_mode = argv[++i];
        } else if (arg == "--per-mix") {
            opts.per_mix = true;
        } else if (arg == "--coverage") {
            coverage = true;
        } else if (arg == "--confidence") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rmtsim_report: missing value for "
                             "--confidence\n");
                return 2;
            }
            confidence = std::atof(argv[++i]);
            if (confidence <= 0 || confidence >= 1) {
                std::fprintf(stderr,
                             "rmtsim_report: --confidence must be in "
                             "(0, 1)\n");
                return 2;
            }
        } else if (arg == "--snapshots") {
            snapshots = true;
        } else if (arg == "--failures") {
            failures = true;
        } else if (arg == "--attribution") {
            attribution = true;
        } else if (arg == "--serve-summary") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rmtsim_report: missing value for "
                             "--serve-summary\n");
                return 2;
            }
            serve_sock = argv[++i];
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usage();
            std::fprintf(stderr,
                         "rmtsim_report: unknown argument '%s'\n",
                         arg.c_str());
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr,
                         "rmtsim_report: more than one input file\n");
            return 2;
        }
    }
#if defined(__unix__) || defined(__APPLE__)
    if (!serve_sock.empty()) {
        // Live-daemon summary: ask for status and print the store
        // counters the serving gate (tools/check.sh) asserts on.
        try {
            const std::string reply = serve::controlRequest(
                serve_sock, "{\"type\":\"status\"}");
            JsonValue status;
            std::string perr;
            if (!parseJson(reply, status, perr)) {
                std::fprintf(stderr,
                             "rmtsim_report: bad status reply: %s\n",
                             perr.c_str());
                return 1;
            }
            const JsonValue *store = status.find("store");
            if (!store) {
                std::fprintf(stderr, "rmtsim_report: status reply has "
                             "no store section\n");
                return 1;
            }
            const JsonValue *draining = status.find("draining");
            std::printf("rmtsimd %s\n", serve_sock.c_str());
            std::printf("  draining           %s\n",
                        draining && draining->isBool() &&
                                draining->boolean()
                            ? "yes"
                            : "no");
            std::printf("  active campaigns   %.0f\n",
                        status.numberOr("active_campaigns", 0));
            std::printf("  campaigns done     %.0f\n",
                        status.numberOr("campaigns_done", 0));
            std::printf("  workers            %.0f\n",
                        status.numberOr("workers", 0));
            std::printf("store\n");
            std::printf("  hits               %.0f\n",
                        store->numberOr("hits", 0));
            std::printf("  misses             %.0f\n",
                        store->numberOr("misses", 0));
            std::printf("  in-flight waits    %.0f\n",
                        store->numberOr("inflight_waits", 0));
            std::printf("  rows               %.0f\n",
                        store->numberOr("rows", 0));
            std::printf("  rows from disk     %.0f\n",
                        store->numberOr("disk_rows", 0));
            std::printf("  stored bytes       %.0f\n",
                        store->numberOr("stored_bytes", 0));
            if (const JsonValue *modes = store->find("modes")) {
                for (const auto &[mode, rows] : modes->members()) {
                    std::printf("  rows[%s]%*s %.0f\n", mode.c_str(),
                                static_cast<int>(
                                    mode.size() < 12
                                        ? 12 - mode.size()
                                        : 1),
                                "", rows.number());
                }
            }
            return 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rmtsim_report: %s\n", e.what());
            return 1;
        }
    }
#endif
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream file;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::fprintf(stderr, "rmtsim_report: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
    }
    std::istream &in = path == "-" ? std::cin : file;

    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);

    unsigned bad_lines = 0;
    const std::vector<JsonValue> records =
        parseJsonlLines(lines, bad_lines);
    if (bad_lines) {
        std::fprintf(stderr, "rmtsim_report: skipped %u malformed "
                     "line%s\n", bad_lines, bad_lines == 1 ? "" : "s");
    }
    if (records.empty()) {
        std::fprintf(stderr, "rmtsim_report: no records in '%s'\n",
                     path.c_str());
        return 1;
    }

    if (failures) {
        const FailuresReport report = buildFailuresReport(records);
        std::fputs(formatFailuresReport(report).c_str(), stdout);
        if (coverage || snapshots || attribution)
            std::fputs("\n", stdout);
        else
            return 0;
    }
    if (snapshots) {
        const SnapshotReport report = buildSnapshotReport(records);
        std::fputs(formatSnapshotReport(report).c_str(), stdout);
        if (coverage)
            std::fputs("\n", stdout);
        else
            return 0;
    }
    if (attribution) {
        const AttributionReport report =
            buildAttributionReport(records, opts);
        std::fputs(formatAttributionReport(report).c_str(), stdout);
        if (report.conservation_violations) {
            std::fprintf(stderr,
                         "rmtsim_report: conservation invariant "
                         "violated in %u record%s\n",
                         report.conservation_violations,
                         report.conservation_violations == 1 ? ""
                                                             : "s");
            return 1;
        }
        if (coverage)
            std::fputs("\n", stdout);
        else
            return 0;
    }
    if (coverage) {
        const CoverageReport report =
            buildCoverageReport(records, confidence);
        std::fputs(formatCoverageReport(report).c_str(), stdout);
        return 0;
    }
    const CampaignReport report = buildReport(records, opts);
    std::fputs(formatReport(report, opts).c_str(), stdout);
    return 0;
}
