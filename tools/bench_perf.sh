#!/usr/bin/env sh
# Regenerate BENCH_perf.json: build bench_perf and run the short
# fixed-seed campaign across all five SimModes, recording committed
# KIPS per mode for this build on this machine.
#
# Usage: tools/bench_perf.sh [extra bench_perf args...]
#   e.g. tools/bench_perf.sh --repeat 5
#
#        tools/bench_perf.sh --check [extra args...]
#   Assert instead of regenerate: with tracing and attribution export
#   disabled (the default hot path — the pipetrace hook is one pointer
#   test per retirement, the slot counters plain adds), committed KIPS
#   must be within 3% of the committed baseline.
#
# The numbers are machine-specific; regenerate (and commit) them from
# the machine that runs the perf gate in tools/check.sh.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_perf >/dev/null

if [ "${1:-}" = "--check" ]; then
    shift
    if [ ! -f BENCH_perf.json ]; then
        echo "bench_perf.sh: BENCH_perf.json missing; regenerate first" >&2
        exit 1
    fi
    exec ./build/bench/bench_perf --baseline BENCH_perf.json \
        --max-regress 3 "$@"
fi

./build/bench/bench_perf --json BENCH_perf.json "$@"
