#!/usr/bin/env sh
# Regenerate BENCH_perf.json: build bench_perf and run the short
# fixed-seed campaign across all five SimModes, recording committed
# KIPS per mode for this build on this machine.
#
# Usage: tools/bench_perf.sh [extra bench_perf args...]
#   e.g. tools/bench_perf.sh --repeat 5
#
# The numbers are machine-specific; regenerate (and commit) them from
# the machine that runs the perf gate in tools/check.sh.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_perf >/dev/null

./build/bench/bench_perf --json BENCH_perf.json "$@"
