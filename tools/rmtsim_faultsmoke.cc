/**
 * @file
 * Whole-sphere fault smoke campaign: a few deterministic trials of
 * every fault kind against the SRT machine with checkpoint recovery,
 * classified by the FaultOracle.  The gate asserts the paper's core
 * coverage claim end-to-end:
 *
 *   - no trial ends in silent data corruption (verdict != sdc),
 *   - no trial leaks out through the raw instruction cap (every run
 *     ends Completed, Hang, or DetectedUnrecoverable),
 *   - no trial fails validation or crashes.
 *
 * The classified results stream to a .jsonl file consumable by
 * `rmtsim_report --coverage`, so the same artifact that gates CI also
 * renders the per-kind detection-rate table.
 *
 *   rmtsim_faultsmoke --out build/fault_smoke.jsonl
 *   rmtsim_report --coverage build/fault_smoke.jsonl
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "rmt/fault_oracle.hh"
#include "runner/runner.hh"

using namespace rmt;

namespace
{

SimOptions
smokeOptions(bool boq_frontend)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.recovery = true;
    o.warmup_insts = 0;
    o.measure_insts = 10000;
    if (boq_frontend)
        o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
    return o;
}

/** All in-sphere kinds, plus the ECC-protected merge buffer (outside
 *  the sphere; its strikes must be corrected, i.e. masked). */
struct KindPlan
{
    FaultRecord::Kind kind;
    bool boq_frontend;      ///< boq strikes need the BOQ trailing fetch
};

const KindPlan kPlans[] = {
    {FaultRecord::Kind::TransientReg, false},
    {FaultRecord::Kind::TransientLvq, false},
    {FaultRecord::Kind::PermanentFu, false},
    {FaultRecord::Kind::TransientSqData, false},
    {FaultRecord::Kind::TransientSqAddr, false},
    {FaultRecord::Kind::TransientLpq, false},
    {FaultRecord::Kind::TransientBoq, true},
    {FaultRecord::Kind::TransientPc, false},
    {FaultRecord::Kind::TransientDecode, false},
    {FaultRecord::Kind::TransientMergeBuffer, false},
};

FaultRecord
planTrial(const KindPlan &plan, unsigned i)
{
    FaultRecord f;
    f.kind = plan.kind;
    f.when = 1200 + 713 * i;
    f.core = 0;
    // Low bits keep a corrupted PC inside the program image so the
    // strike exercises detection rather than only the hang watchdog.
    const unsigned bits[] = {2, 5, 9, 13};
    f.bit = bits[i % 4];
    switch (plan.kind) {
      case FaultRecord::Kind::TransientReg:
        f.tid = static_cast<ThreadId>(i % 2);
        f.reg = static_cast<RegIndex>(4 + i);
        break;
      case FaultRecord::Kind::PermanentFu:
        f.fuIndex = i % 8;
        f.mask = std::uint64_t{1} << (i % 16);
        break;
      case FaultRecord::Kind::TransientDecode:
        f.tid = static_cast<ThreadId>(i % 2);
        break;
      default:
        f.tid = 0;
        break;
    }
    return f;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::string out_path;
    unsigned trials = 4;
    unsigned jobs = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "rmtsim_faultsmoke — whole-sphere zero-SDC gate\n"
                "\n"
                "  --out FILE    classified trials as .jsonl\n"
                "  --trials N    trials per fault kind (default 4)\n"
                "  --jobs N      worker threads (default all cores)\n");
            return 0;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--trials") {
            trials = static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(next().c_str()));
        } else {
            fatal("unknown argument '%s'", arg.c_str());
        }
    }

    // One golden image per frontend variant; the fault-free memory
    // image is frontend-independent but cheap to prove rather than
    // assume.
    const FaultOracle oracle(
        FaultOracle::goldenImage({"gcc"}, smokeOptions(false)));
    const FaultOracle boq_oracle(
        FaultOracle::goldenImage({"gcc"}, smokeOptions(true)));

    Campaign campaign;
    campaign.name = "fault-smoke";
    for (const KindPlan &plan : kPlans) {
        for (unsigned i = 0; i < trials; ++i) {
            JobSpec spec;
            spec.id = campaign.jobs.size();
            const FaultRecord f = planTrial(plan, i);
            spec.label = std::string(faultKindName(f.kind)) +
                         ":gcc trial=" + std::to_string(i);
            spec.workloads = {"gcc"};
            spec.options = smokeOptions(plan.boq_frontend);
            spec.faults.push_back(f);
            attachFaultOracle(spec,
                              plan.boq_frontend ? &boq_oracle
                                                : &oracle);
            campaign.jobs.push_back(std::move(spec));
        }
    }

    std::ofstream out_file;
    std::unique_ptr<JsonlSink> sink;
    if (!out_path.empty()) {
        out_file.open(out_path);
        if (!out_file)
            fatal("cannot open '%s' for writing", out_path.c_str());
        JsonlSink::Options sopts;
        sopts.progress = false;
        sopts.include_timing = false;
        sink = std::make_unique<JsonlSink>(out_file, sopts);
    }

    RunnerConfig cfg;
    cfg.jobs = jobs;
    cfg.sink = sink.get();
    const std::vector<JobResult> results = runCampaign(campaign, cfg);

    unsigned bad = 0;
    unsigned tallies[4] = {};   // Masked, Detected, Sdc, Hang
    for (const JobResult &r : results) {
        if (!r.ok()) {
            std::fprintf(stderr, "FAIL %s: %s\n", r.label.c_str(),
                         r.error.c_str());
            ++bad;
            continue;
        }
        if (!r.has_verdict) {
            std::fprintf(stderr, "FAIL %s: no verdict\n",
                         r.label.c_str());
            ++bad;
            continue;
        }
        ++tallies[static_cast<unsigned>(r.verdict)];
        if (r.verdict == FaultVerdict::Sdc) {
            std::fprintf(stderr,
                         "FAIL %s: silent data corruption\n",
                         r.label.c_str());
            ++bad;
        }
        if (r.run.outcome == Outcome::CapExceeded) {
            std::fprintf(stderr,
                         "FAIL %s: ran out through the raw "
                         "instruction cap\n",
                         r.label.c_str());
            ++bad;
        }
    }

    std::printf("fault smoke: %zu trials, masked %u, detected %u, "
                "sdc %u, hang %u\n",
                results.size(), tallies[0], tallies[1], tallies[2],
                tallies[3]);
    if (bad) {
        std::fprintf(stderr, "fault smoke: %u violation%s\n", bad,
                     bad == 1 ? "" : "s");
        return 1;
    }
    std::printf("fault smoke: zero SDC, every trial classified\n");
    return 0;
}
