/**
 * @file
 * Ablation A3 (Section 4.2): store-queue sizing under SRT.  The store
 * queue CAM is cycle-critical at 64 entries, so the paper proposes
 * per-thread store queues instead of one bigger shared queue; this
 * sweep shows both levers on the store-dense benchmarks.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    const std::vector<unsigned> sizes{16, 32, 64, 128};
    const std::vector<std::string> workloads{"vortex", "compress",
                                             "m88ksim", "applu", "swim"};

    std::vector<std::string> cols;
    for (unsigned s : sizes)
        cols.push_back("shared" + std::to_string(s));
    cols.push_back("ptsq64");

    printHeader("Store-queue size sweep (SRT SMT-Efficiency, one "
                "logical thread)",
                cols);
    for (const auto &name : workloads) {
        std::vector<double> row;
        for (unsigned s : sizes) {
            SimOptions o = opts;
            o.mode = SimMode::Srt;
            o.cpu.store_queue_entries = s;
            row.push_back(baseline.efficiency(runSimulation({name}, o)));
        }
        SimOptions o = opts;
        o.mode = SimMode::Srt;
        o.per_thread_store_queues = true;
        row.push_back(baseline.efficiency(runSimulation({name}, o)));
        printRow(name, row);
    }
    std::printf("\npaper: growing the shared CAM past 64 hurts cycle "
                "time; per-thread 64-entry queues give the benefit "
                "without it\n");
    return 0;
}
