/**
 * @file
 * Store-queue pressure under SRT [reconstructed from Section 4.2 /
 * 7.1's quantitative claims]: average leading-store store-queue
 * lifetime in the base processor vs SRT, and the dispatch stalls the
 * longer occupancy causes.
 *
 * Paper result: SRT lengthens the average leading-store lifetime by
 * roughly 39 cycles, which is why store-queue size has first-order
 * performance impact and why per-thread store queues help.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    const SimOptions opts = standardOptions();

    printHeader("Store-queue pressure: leading-store SQ lifetime "
                "(cycles) and SQ-full dispatch stalls",
                {"base life", "SRT life", "delta", "SRT stalls",
                 "ptsq stalls"});

    std::vector<double> deltas;
    for (const auto &name : spec95Names()) {
        SimOptions o = opts;
        o.mode = SimMode::Base;
        const RunResult base = runSimulation({name}, o);

        o.mode = SimMode::Srt;
        const RunResult srt = runSimulation({name}, o);

        o.per_thread_store_queues = true;
        const RunResult ptsq = runSimulation({name}, o);

        const double delta = srt.avg_leading_store_lifetime -
                             base.avg_leading_store_lifetime;
        printRow(name,
                 {base.avg_leading_store_lifetime,
                  srt.avg_leading_store_lifetime, delta,
                  static_cast<double>(srt.sq_full_stalls),
                  static_cast<double>(ptsq.sq_full_stalls)},
                 " %12.1f");
        deltas.push_back(delta);
    }
    std::printf("\npaper: SRT lengthens average leading-store lifetime "
                "by ~39 cycles\n");
    std::printf("here:  mean lifetime increase %.1f cycles\n",
                mean(deltas));
    return 0;
}
