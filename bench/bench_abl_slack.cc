/**
 * @file
 * Ablation A2 (Sections 2.3, 4.4): slack fetch.  With the BOQ front
 * end, the forced fetch slack absorbs leading-thread cache misses for
 * the trailing thread (the original SRT paper measured ~10% from it).
 * With the LPQ, retire-driven chunk forwarding subsumes slack fetch —
 * adding slack on top should change little.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    const std::vector<unsigned> slacks{0, 16, 64, 128, 256};
    const std::vector<std::string> workloads{"gcc", "compress", "swim",
                                             "mgrid", "vortex"};

    std::vector<std::string> cols;
    for (unsigned s : slacks)
        cols.push_back("slack" + std::to_string(s));

    printHeader("Slack-fetch sweep, BOQ front end (SRT SMT-Efficiency)",
                cols);
    for (const auto &name : workloads) {
        std::vector<double> row;
        for (unsigned s : slacks) {
            SimOptions o = opts;
            o.mode = SimMode::Srt;
            o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
            o.slack_fetch = s;
            row.push_back(baseline.efficiency(runSimulation({name}, o)));
        }
        printRow(name, row);
    }

    std::printf("\n");
    printHeader("Slack-fetch sweep, LPQ front end (slack subsumed)",
                cols);
    for (const auto &name : workloads) {
        std::vector<double> row;
        for (unsigned s : slacks) {
            SimOptions o = opts;
            o.mode = SimMode::Srt;
            o.trailing_fetch = TrailingFetchMode::LinePredictionQueue;
            o.slack_fetch = s;
            row.push_back(baseline.efficiency(runSimulation({name}, o)));
        }
        printRow(name, row);
    }
    std::printf("\npaper: with the LPQ, slack fetch was no longer "
                "necessary (Section 4.4)\n");
    return 0;
}
