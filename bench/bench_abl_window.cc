/**
 * @file
 * Ablation A6: the shared completion-unit (in-flight window) size.
 *
 * DESIGN.md §6.7 notes that modelling the completion unit as a shared
 * resource is what exposes SRT's window contention; this sweep
 * quantifies it: base IPC and SRT efficiency across window sizes, with
 * physical registers scaled to match (the window is bounded by
 * whichever is smaller).
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    const std::vector<unsigned> windows{64, 128, 256, 384};
    const std::vector<std::string> workloads{"compress", "applu", "swim",
                                             "gcc", "vortex"};

    std::vector<std::string> cols;
    for (unsigned w : windows) {
        cols.push_back("base" + std::to_string(w));
        cols.push_back("srt" + std::to_string(w));
    }
    printHeader("In-flight window sweep: base IPC and SRT SMT-"
                "Efficiency per window size",
                cols);

    for (const auto &name : workloads) {
        std::vector<double> row;
        for (unsigned w : windows) {
            SimOptions o = standardOptions();
            o.cpu.rob_entries = w;
            o.cpu.phys_regs = 256 + 2 * w;  // window never reg-bound
            o.mode = SimMode::Base;
            const double base_ipc =
                runSimulation({name}, o).threads[0].ipc;
            o.mode = SimMode::Srt;
            const double srt_ipc =
                runSimulation({name}, o).threads[0].ipc;
            row.push_back(base_ipc);
            row.push_back(base_ipc > 0 ? srt_ipc / base_ipc : 0);
        }
        printRow(name, row);
    }
    std::printf("\nlarger windows raise base IPC on memory-bound codes "
                "(window-limited misses overlap) and *deepen* SRT's "
                "relative cost: the trailing thread competes for the "
                "same shared window.\n");
    return 0;
}
