/**
 * @file
 * Fault-recovery extension bench (the paper's checker "initiates a ...
 * recovery sequence" — this measures the sequence we built):
 *
 *  1. checkpoint overhead: fault-free SRT IPC with verified
 *     checkpointing enabled, across checkpoint intervals;
 *  2. recovery cost: with a transient strike injected, the re-executed
 *     (discarded) work and the end-to-end slowdown, across intervals —
 *     the classic cadence trade-off (frequent checkpoints cost more
 *     up front but discard less on a fault).
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

namespace
{

RunResult
runWith(std::uint64_t interval, bool inject)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = 40000;
    o.recovery = true;
    o.recovery_params.interval_insts = interval;
    Simulation sim({"compress"}, o);
    if (inject) {
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientReg;
        f.when = 8000;
        f.core = 0;
        f.tid = 0;
        f.reg = intReg(3);      // hash-table base: propagates instantly
        f.bit = 5;
        sim.faultInjector().schedule(f);
    }
    RunResult r = sim.run();
    if (sim.chip().redundancy().pair(0).recovery) {
        r.recoveries =
            sim.chip().redundancy().pair(0).recovery->recoveries();
    }
    return r;
}

std::uint64_t
discardedWith(std::uint64_t interval)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = 40000;
    o.recovery = true;
    o.recovery_params.interval_insts = interval;
    Simulation sim({"compress"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 8000;
    f.core = 0;
    f.tid = 0;
    f.reg = intReg(3);
    f.bit = 5;
    sim.faultInjector().schedule(f);
    sim.run();
    return sim.chip().redundancy().pair(0).recovery->discardedInsts();
}

} // namespace

int
main()
{
    setInformEnabled(false);

    // Baseline: SRT without recovery machinery.
    SimOptions base_opts;
    base_opts.mode = SimMode::Srt;
    base_opts.warmup_insts = 0;
    base_opts.measure_insts = 40000;
    const RunResult base = runSimulation({"compress"}, base_opts);

    std::printf("Fault recovery (verified checkpointing), compress/SRT\n");
    std::printf("baseline SRT IPC (no recovery machinery): %.3f\n\n",
                base.threads[0].ipc);
    std::printf("%-10s %12s %12s %14s %12s\n", "interval", "cleanIPC",
                "faultIPC", "discarded", "recoveries");

    for (std::uint64_t interval : {250u, 500u, 1000u, 2000u, 4000u,
                                   8000u}) {
        const RunResult clean = runWith(interval, false);
        const RunResult faulty = runWith(interval, true);
        const std::uint64_t discarded = discardedWith(interval);
        std::printf("%-10llu %12.3f %12.3f %14llu %12llu\n",
                    static_cast<unsigned long long>(interval),
                    clean.threads[0].ipc, faulty.threads[0].ipc,
                    static_cast<unsigned long long>(discarded),
                    static_cast<unsigned long long>(faulty.recoveries));
    }
    std::printf("\nsmaller intervals discard less work per recovery; "
                "checkpointing itself is bookkeeping-only (cleanIPC "
                "tracks the baseline).\n");
    return 0;
}
