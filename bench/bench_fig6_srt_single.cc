/**
 * @file
 * Figure 6: SMT-Efficiency for one logical thread on the four
 * single-processor configurations — Base2 (two uncoupled copies), SRT,
 * SRT with per-thread store queues, and SRT without store comparison —
 * across the 18 SPEC CPU95-like benchmarks.
 *
 * Driven through the campaign runner: the 18 x 4 grid fans out over
 * all host cores (override with RMTSIM_JOBS=N), with the single-thread
 * baselines computed once per workload by the shared single-flight
 * BaselineCache.  Results are gathered by job id, so the table is
 * identical whatever the worker count.
 *
 * Paper result: SRT degrades 32% on average vs the base processor
 * running one copy (1.0 on this scale); per-thread store queues recover
 * ~2% on average with large gains on individual benchmarks.
 */

#include "bench_util.hh"
#include "runner/runner.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    const SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    struct Variant
    {
        const char *name;
        void (*apply)(SimOptions &);
    };
    const Variant variants[] = {
        {"Base2", [](SimOptions &o) { o.mode = SimMode::Base2; }},
        {"SRT", [](SimOptions &o) { o.mode = SimMode::Srt; }},
        {"SRT+ptsq",
         [](SimOptions &o) {
             o.mode = SimMode::Srt;
             o.per_thread_store_queues = true;
         }},
        {"SRT+nosc",
         [](SimOptions &o) {
             o.mode = SimMode::Srt;
             o.store_comparison = false;
         }},
    };
    const std::size_t num_variants = std::size(variants);

    Campaign campaign;
    campaign.name = "fig6";
    for (const auto &name : spec95Names()) {
        for (const Variant &v : variants) {
            JobSpec spec;
            spec.id = campaign.jobs.size();
            spec.label = std::string(v.name) + ":" + name;
            spec.workloads = {name};
            spec.options = opts;
            v.apply(spec.options);
            campaign.jobs.push_back(std::move(spec));
        }
    }

    RunnerConfig cfg;
    cfg.jobs = benchJobs();
    cfg.baseline = &baseline;
    const auto results = runCampaign(campaign, cfg);

    printHeader("Figure 6: SMT-Efficiency, one logical thread "
                "(1.0 = single-thread base)",
                {"Base2", "SRT", "SRT+ptsq", "SRT+nosc"});

    std::vector<std::vector<double>> columns(num_variants);
    const auto &names = spec95Names();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<double> row;
        for (std::size_t v = 0; v < num_variants; ++v) {
            const JobResult &r = results[w * num_variants + v];
            if (!r.ok())
                fatal("fig6 job '%s' failed: %s", r.label.c_str(),
                      r.error.c_str());
            row.push_back(r.mean_efficiency);
            columns[v].push_back(r.mean_efficiency);
        }
        printRow(names[w], row);
    }
    printRow("MEAN", {mean(columns[0]), mean(columns[1]),
                      mean(columns[2]), mean(columns[3])});
    std::printf("\npaper: SRT mean degradation 32%% (efficiency 0.68); "
                "ptsq -> 30%% (0.70)\n");
    std::printf("here:  SRT mean degradation %.0f%% (efficiency %.2f); "
                "ptsq -> %.0f%% (%.2f)\n",
                100 * (1 - mean(columns[1])), mean(columns[1]),
                100 * (1 - mean(columns[2])), mean(columns[2]));
    return 0;
}
