/**
 * @file
 * Figure 6: SMT-Efficiency for one logical thread on the four
 * single-processor configurations — Base2 (two uncoupled copies), SRT,
 * SRT with per-thread store queues, and SRT without store comparison —
 * across the 18 SPEC CPU95-like benchmarks.
 *
 * Paper result: SRT degrades 32% on average vs the base processor
 * running one copy (1.0 on this scale); per-thread store queues recover
 * ~2% on average with large gains on individual benchmarks.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    printHeader("Figure 6: SMT-Efficiency, one logical thread "
                "(1.0 = single-thread base)",
                {"Base2", "SRT", "SRT+ptsq", "SRT+nosc"});

    std::vector<double> base2s, srts, ptsqs, noscs;
    for (const auto &name : spec95Names()) {
        SimOptions o = opts;

        o.mode = SimMode::Base2;
        const double base2 =
            baseline.efficiency(runSimulation({name}, o));

        o.mode = SimMode::Srt;
        const double srt = baseline.efficiency(runSimulation({name}, o));

        o.per_thread_store_queues = true;
        const double ptsq =
            baseline.efficiency(runSimulation({name}, o));
        o.per_thread_store_queues = false;

        o.store_comparison = false;
        const double nosc =
            baseline.efficiency(runSimulation({name}, o));

        printRow(name, {base2, srt, ptsq, nosc});
        base2s.push_back(base2);
        srts.push_back(srt);
        ptsqs.push_back(ptsq);
        noscs.push_back(nosc);
    }
    printRow("MEAN", {mean(base2s), mean(srts), mean(ptsqs), mean(noscs)});
    std::printf("\npaper: SRT mean degradation 32%% (efficiency 0.68); "
                "ptsq -> 30%% (0.70)\n");
    std::printf("here:  SRT mean degradation %.0f%% (efficiency %.2f); "
                "ptsq -> %.0f%% (%.2f)\n",
                100 * (1 - mean(srts)), mean(srts),
                100 * (1 - mean(ptsqs)), mean(ptsqs));
    return 0;
}
