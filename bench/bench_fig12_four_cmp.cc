/**
 * @file
 * Lockstepping vs CRT with four logical threads [reconstructed]: the
 * paper's 15 four-program combinations of {gcc, go, ijpeg, fpppp,
 * swim}.
 *
 * Paper result: CRT outperforms lockstepping by 13% on average, with a
 * maximum improvement of 22%.
 */

#include <algorithm>

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    printHeader("Lockstep vs CRT, four logical threads (SMT-Efficiency)",
                {"Lock0", "Lock8", "CRT", "CRT/Lock8"});

    std::vector<double> l0s, l8s, crts, gains;
    for (const auto &mix : fourProgramMixes()) {
        SimOptions o = opts;
        o.mode = SimMode::Lockstep;
        o.checker_penalty = 0;
        const double l0 = baseline.efficiency(runSimulation(mix, o));
        o.checker_penalty = 8;
        const double l8 = baseline.efficiency(runSimulation(mix, o));
        o.mode = SimMode::Crt;
        const double crt = baseline.efficiency(runSimulation(mix, o));
        printRow(mixName(mix), {l0, l8, crt, crt / l8});
        l0s.push_back(l0);
        l8s.push_back(l8);
        crts.push_back(crt);
        gains.push_back(crt / l8 - 1);
    }
    printRow("MEAN", {mean(l0s), mean(l8s), mean(crts),
                      1 + mean(gains)});
    std::printf("\npaper: CRT beats lockstepping by 13%% on average, "
                "22%% maximum (multithreaded workloads)\n");
    std::printf("here:  CRT beats Lock8 by %.0f%% on average, %.0f%% "
                "maximum\n",
                100 * mean(gains),
                100 * *std::max_element(gains.begin(), gains.end()));
    return 0;
}
