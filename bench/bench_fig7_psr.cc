/**
 * @file
 * Figure 7: fraction of redundant instruction pairs that execute on the
 * same functional unit, with and without preferential space redundancy.
 *
 * Paper result: 65% of pairs share a unit without PSR (no coverage of a
 * permanent fault in that unit); 0.06% with PSR — with no performance
 * loss.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    const SimOptions opts = standardOptions();

    printHeader("Figure 7: same-functional-unit instruction pairs (SRT)",
                {"noPSR %", "PSR %", "PSR ipc/noPSR"});

    std::vector<double> no_psr_fracs, psr_fracs, ipc_ratios;
    for (const auto &name : spec95Names()) {
        SimOptions o = opts;
        o.mode = SimMode::Srt;

        o.preferential_space_redundancy = false;
        const RunResult no_psr = runSimulation({name}, o);

        o.preferential_space_redundancy = true;
        const RunResult psr = runSimulation({name}, o);

        const double ratio = no_psr.threads[0].ipc > 0
                                 ? psr.threads[0].ipc / no_psr.threads[0].ipc
                                 : 0.0;
        printRow(name, {100 * no_psr.fuSameFraction(),
                        100 * psr.fuSameFraction(), ratio});
        no_psr_fracs.push_back(100 * no_psr.fuSameFraction());
        psr_fracs.push_back(100 * psr.fuSameFraction());
        ipc_ratios.push_back(ratio);
    }
    printRow("MEAN", {mean(no_psr_fracs), mean(psr_fracs),
                      mean(ipc_ratios)});
    std::printf("\npaper: 65%% same-unit without PSR -> 0.06%% with PSR, "
                "no performance loss\n");
    std::printf("here:  %.0f%% -> %.1f%%, PSR/noPSR IPC ratio %.3f\n",
                mean(no_psr_fracs), mean(psr_fracs), mean(ipc_ratios));
    return 0;
}
