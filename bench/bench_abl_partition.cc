/**
 * @file
 * Ablation A7: static vs dynamic load/store-queue partitioning.
 *
 * The paper statically divides the 64-entry LQ/SQ among hardware
 * threads (Section 3.4), which is brutal at four contexts (16 entries
 * each); this ablation asks whether that static split explains why our
 * four-thread lockstep numbers fall further than the paper's
 * (EXPERIMENTS.md, Fig. 12 entry).  Result: no — dynamic sharing makes
 * lockstep *worse* (one hungry thread crowds the pool), so the gap is
 * genuine multi-context contention, not the partitioning policy.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    printHeader("LQ/SQ partitioning, four-program mixes "
                "(SMT-Efficiency)",
                {"Lock8-stat", "Lock8-dyn", "CRT-stat", "CRT-dyn"});

    std::vector<double> ls, ld, cs, cdn;
    for (const auto &mix : fourProgramMixes()) {
        SimOptions o = opts;
        o.mode = SimMode::Lockstep;
        o.checker_penalty = 8;
        o.cpu.dynamic_lsq_partition = false;
        const double lock_static =
            baseline.efficiency(runSimulation(mix, o));
        o.cpu.dynamic_lsq_partition = true;
        const double lock_dyn =
            baseline.efficiency(runSimulation(mix, o));

        o.mode = SimMode::Crt;
        o.cpu.dynamic_lsq_partition = false;
        const double crt_static =
            baseline.efficiency(runSimulation(mix, o));
        o.cpu.dynamic_lsq_partition = true;
        const double crt_dyn =
            baseline.efficiency(runSimulation(mix, o));

        printRow(mixName(mix),
                 {lock_static, lock_dyn, crt_static, crt_dyn});
        ls.push_back(lock_static);
        ld.push_back(lock_dyn);
        cs.push_back(crt_static);
        cdn.push_back(crt_dyn);
    }
    printRow("MEAN", {mean(ls), mean(ld), mean(cs), mean(cdn)});
    std::printf("\nCRT/Lock8: static %.2f, dynamic %.2f.  Dynamic "
                "sharing HURTS four-context lockstep (pool hogging "
                "without fairness) and widens the CRT gap: the static "
                "split is not what inflates our Fig. 12 magnitudes — "
                "it is genuine 4-context contention, which the paper's "
                "partitioning choice already handles as well as "
                "anything.\n",
                mean(cs) / mean(ls), mean(cdn) / mean(ld));
    return 0;
}
