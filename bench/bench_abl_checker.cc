/**
 * @file
 * Ablation A4 (Section 6.3): sensitivity to the lockstep checker
 * latency.  The paper assumes 8 cycles is realistic (central checker
 * wiring, comparison logic, slack for minor synchronisation drift);
 * this sweep shows how the lockstep-vs-CRT verdict depends on it.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    const std::vector<unsigned> penalties{0, 2, 4, 8, 16};

    std::vector<std::string> cols;
    for (unsigned p : penalties)
        cols.push_back("Lock" + std::to_string(p));
    cols.push_back("CRT");

    printHeader("Checker-latency sweep, two-program mixes "
                "(SMT-Efficiency)",
                cols);
    std::vector<std::vector<double>> sums(penalties.size() + 1);
    for (const auto &mix : twoProgramMixes()) {
        std::vector<double> row;
        for (unsigned p : penalties) {
            SimOptions o = opts;
            o.mode = SimMode::Lockstep;
            o.checker_penalty = p;
            row.push_back(baseline.efficiency(runSimulation(mix, o)));
        }
        SimOptions o = opts;
        o.mode = SimMode::Crt;
        row.push_back(baseline.efficiency(runSimulation(mix, o)));
        printRow(mixName(mix), row);
        for (std::size_t i = 0; i < row.size(); ++i)
            sums[i].push_back(row[i]);
    }
    std::vector<double> means;
    for (const auto &col : sums)
        means.push_back(mean(col));
    printRow("MEAN", means);
    std::printf("\npaper: Lock0 is ideal (== base); 8 cycles is the "
                "realistic checker; CRT's queues keep forwarding off "
                "the critical path\n");
    return 0;
}
