/**
 * @file
 * Host-throughput benchmark: committed KIPS (kilo simulated
 * instructions committed per host second, from obs/host_profile) for a
 * short fixed-seed campaign across all five SimModes.
 *
 * Two uses:
 *
 *  - emit: `bench_perf --json BENCH_perf.json` records the per-mode
 *    KIPS of this build on this machine (the committed baseline is
 *    regenerated with tools/bench_perf.sh);
 *  - gate: `bench_perf --baseline BENCH_perf.json --max-regress 10`
 *    re-measures and exits non-zero when any mode regressed by more
 *    than the threshold (tools/check.sh runs this as its perf smoke).
 *
 * Jobs execute serially (never through the thread pool) and each grid
 * point keeps the best of N repeats, so a loaded host biases the
 * numbers down less than a mean would.  KIPS aggregates across
 * workloads are committed-instruction weighted.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "runner/runner.hh"

using namespace rmt;
using namespace rmtbench;

namespace
{

struct WorkloadPerf
{
    std::string workload;
    double kips = 0;                ///< best of N repeats
    std::uint64_t committed = 0;    ///< per run (identical across repeats)
};

struct ModePerf
{
    SimMode mode;
    double kips = 0;                ///< committed-weighted aggregate
    std::uint64_t committed = 0;    ///< sum over workloads, one run each
    std::vector<WorkloadPerf> workloads;
};

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_perf [--json FILE] [--baseline FILE]\n"
        "                  [--max-regress PCT] [--repeat N]\n"
        "                  [--insts N] [--warmup N] [--workloads a,b,c]\n");
}

std::string
perfJson(const std::vector<ModePerf> &modes, std::uint64_t warmup,
         std::uint64_t measure, unsigned repeats,
         const std::vector<std::string> &workloads)
{
    std::ostringstream os;
    os << "{\"schema\":\"rmtsim-bench-perf-v1\""
       << ",\"warmup_insts\":" << warmup
       << ",\"measure_insts\":" << measure
       << ",\"repeats\":" << repeats
       << ",\"workloads\":[";
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        os << (i ? "," : "") << "\"" << jsonEscape(workloads[i])
           << "\"";
    }
    os << "],\"modes\":[";
    for (std::size_t m = 0; m < modes.size(); ++m) {
        const ModePerf &mp = modes[m];
        os << (m ? "," : "") << "{\"mode\":\"" << modeName(mp.mode)
           << "\",\"kips\":" << jsonNum(mp.kips)
           << ",\"committed\":" << mp.committed << ",\"per_workload\":[";
        for (std::size_t w = 0; w < mp.workloads.size(); ++w) {
            const WorkloadPerf &wp = mp.workloads[w];
            os << (w ? "," : "") << "{\"workload\":\""
               << jsonEscape(wp.workload)
               << "\",\"kips\":" << jsonNum(wp.kips)
               << ",\"committed\":" << wp.committed << "}";
        }
        os << "]}";
    }
    os << "]}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::string json_path;
    std::string baseline_path;
    double max_regress = 10.0;
    unsigned repeats = 3;
    std::uint64_t measure = 20000;
    std::uint64_t warmup = 2000;
    std::vector<std::string> workloads = {"gcc", "swim", "compress"};

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json") {
            json_path = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--max-regress") {
            max_regress = std::atof(next());
        } else if (arg == "--repeat") {
            repeats = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--insts") {
            measure = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--workloads") {
            workloads = splitList(next());
        } else {
            usage();
            return 2;
        }
    }
    if (repeats == 0)
        repeats = 1;
    if (workloads.empty()) {
        usage();
        return 2;
    }

    const SimMode all_modes[] = {SimMode::Base, SimMode::Base2,
                                 SimMode::Srt, SimMode::Lockstep,
                                 SimMode::Crt};

    RunnerConfig cfg;   // executeJob runs inline; no pool, no retries
    cfg.max_attempts = 1;

    std::vector<ModePerf> modes;
    for (const SimMode mode : all_modes) {
        ModePerf mp;
        mp.mode = mode;
        double seconds_total = 0;
        for (const std::string &workload : workloads) {
            JobSpec spec;
            spec.id = 0;
            spec.label = std::string(modeName(mode)) + ":" + workload;
            spec.workloads = {workload};
            spec.options.mode = mode;
            spec.options.warmup_insts = warmup;
            spec.options.measure_insts = measure;
            spec.seed = 0x52'4d'54'53'49'4dull;     // fixed ("RMTSIM")

            WorkloadPerf wp;
            wp.workload = workload;
            for (unsigned r = 0; r < repeats; ++r) {
                const JobResult res = executeJob(spec, cfg);
                if (!res.ok())
                    fatal("bench_perf job '%s' failed: %s",
                          spec.label.c_str(), res.error.c_str());
                std::uint64_t committed = 0;
                for (const ThreadResult &t : res.run.threads)
                    committed += t.committed;
                wp.committed = committed;
                if (res.run.host.sim_kips > wp.kips)
                    wp.kips = res.run.host.sim_kips;
            }
            if (wp.kips <= 0)
                fatal("bench_perf: zero KIPS for '%s'",
                      spec.label.c_str());
            mp.committed += wp.committed;
            seconds_total +=
                static_cast<double>(wp.committed) / (wp.kips * 1e3);
            mp.workloads.push_back(std::move(wp));
        }
        mp.kips = static_cast<double>(mp.committed) /
                  (seconds_total * 1e3);
        modes.push_back(std::move(mp));
    }

    std::printf("%-10s %12s %12s\n", "mode", "kips", "committed");
    for (const ModePerf &mp : modes) {
        std::printf("%-10s %12.1f %12llu\n", modeName(mp.mode),
                    mp.kips,
                    static_cast<unsigned long long>(mp.committed));
    }

    const std::string doc =
        perfJson(modes, warmup, measure, repeats, workloads);
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            fatal("bench_perf: cannot write %s", json_path.c_str());
        out << doc;
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (baseline_path.empty())
        return 0;

    // ------------------------------------------ regression gate
    std::ifstream in(baseline_path);
    if (!in)
        fatal("bench_perf: cannot read baseline %s",
              baseline_path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    JsonValue base;
    std::string err;
    if (!parseJson(buf.str(), base, err))
        fatal("bench_perf: baseline %s: %s", baseline_path.c_str(),
              err.c_str());
    const JsonValue *base_modes = base.find("modes");
    if (!base_modes || !base_modes->isArray())
        fatal("bench_perf: baseline %s has no \"modes\" array",
              baseline_path.c_str());

    int failures = 0;
    std::printf("\nvs %s (max regression %.0f%%):\n",
                baseline_path.c_str(), max_regress);
    for (const ModePerf &mp : modes) {
        const JsonValue *ref = nullptr;
        for (const JsonValue &entry : base_modes->array()) {
            if (entry.strOr("mode", "") == modeName(mp.mode)) {
                ref = &entry;
                break;
            }
        }
        if (!ref) {
            std::printf("  %-10s (no baseline entry, skipped)\n",
                        modeName(mp.mode));
            continue;
        }
        const double base_kips = ref->numberOr("kips", 0);
        if (base_kips <= 0)
            continue;
        const double delta = 100.0 * (mp.kips - base_kips) / base_kips;
        const bool bad = delta < -max_regress;
        std::printf("  %-10s %12.1f -> %12.1f  %+6.1f%%%s\n",
                    modeName(mp.mode), base_kips, mp.kips, delta,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (failures) {
        std::fprintf(stderr,
                     "bench_perf: %d mode(s) regressed more than "
                     "%.0f%%\n",
                     failures, max_regress);
        return 1;
    }
    std::printf("perf gate: OK\n");
    return 0;
}
