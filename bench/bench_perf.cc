/**
 * @file
 * Host-throughput benchmark: committed KIPS (kilo simulated
 * instructions committed per host second, from obs/host_profile) for a
 * short fixed-seed campaign across all five SimModes.
 *
 * Two uses:
 *
 *  - emit: `bench_perf --json BENCH_perf.json` records the per-mode
 *    KIPS of this build on this machine (the committed baseline is
 *    regenerated with tools/bench_perf.sh);
 *  - gate: `bench_perf --baseline BENCH_perf.json --max-regress 10`
 *    re-measures and exits non-zero when any mode regressed by more
 *    than the threshold (tools/check.sh runs this as its perf smoke).
 *
 * Jobs execute serially (never through the thread pool) and each grid
 * point keeps the best of N repeats, so a loaded host biases the
 * numbers down less than a mean would.  KIPS aggregates across
 * workloads are committed-instruction weighted.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "runner/fork_executor.hh"
#include "runner/runner.hh"

using namespace rmt;
using namespace rmtbench;

namespace
{

struct WorkloadPerf
{
    std::string workload;
    double kips = 0;                ///< best of N repeats
    std::uint64_t committed = 0;    ///< per run (identical across repeats)
};

struct ModePerf
{
    SimMode mode;
    double kips = 0;                ///< committed-weighted aggregate
    std::uint64_t committed = 0;    ///< sum over workloads, one run each
    std::vector<WorkloadPerf> workloads;
};

/** Snapshot-forked vs from-scratch fault-campaign wall time. */
struct FaultCampaignPerf
{
    std::vector<std::string> workloads;
    unsigned trials = 0;            ///< per workload
    double from_scratch_seconds = 0;
    double forked_seconds = 0;
    double speedup = 0;
    bool verdicts_match = false;
};

/**
 * fork()-COW trial executor on the fault-coverage bench, measured
 * against the same from-scratch reference the PR-5 snapshot path was
 * scored on (fault_campaign.speedup), plus the snapshot path itself.
 */
struct ForkExecPerf
{
    std::vector<std::string> workloads;
    unsigned trials = 0;
    std::uint64_t warmup = 0;
    std::uint64_t measure = 0;
    double scratch_seconds = 0;     ///< no snapshots: full run per trial
    double snapshot_seconds = 0;    ///< PR-5 path: build+restore per trial
    double fork_seconds = 0;        ///< ForkExecutor: COW children
    double speedup = 0;             ///< scratch / fork (the gated entry)
    double snapshot_speedup = 0;    ///< scratch / snapshot (PR-5 metric)
    bool verdicts_match = false;
    std::uint64_t warm_builds = 0;  ///< parent simulations constructed
};

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_perf [--json FILE] [--baseline FILE]\n"
        "                  [--max-regress PCT] [--repeat N]\n"
        "                  [--insts N] [--warmup N] [--workloads a,b,c]\n"
        "                  [--fault-trials N] [--min-fork-speedup X]\n"
        "                  [--min-fork-exec-speedup X]\n");
}

/**
 * Time one SRT fault campaign (transient-reg trials over the given
 * workloads, oracle-classified) twice — from scratch and forked from
 * cached snapshots — and check the two produce identical per-trial
 * verdicts.  Serial execution, so the wall-clock ratio is the honest
 * per-trial saving including the producer runs.
 */
FaultCampaignPerf
benchFaultCampaign(const std::vector<std::string> &workloads,
                   unsigned trials, std::uint64_t warmup,
                   std::uint64_t measure)
{
    using Clock = std::chrono::steady_clock;

    FaultCampaignPerf perf;
    perf.workloads = workloads;
    perf.trials = trials;

    SimOptions base;
    base.mode = SimMode::Srt;
    base.warmup_insts = warmup;
    base.measure_insts = measure;
    // Dense barriers: trial faults land at (warmup+measure)/12 cycles
    // or later, so a cadence below that means every trial can fork.
    base.snapshot_every =
        std::max<std::uint64_t>(1, (warmup + measure) / 16);

    CampaignBuilder builder("perf-faults", 0x52'4d'54ull);
    builder.base(base)
        .modes({SimMode::Srt})
        .workloads(workloads)
        .transientRegTrials(trials, 15);
    Campaign campaign = builder.build();

    std::map<std::string, std::unique_ptr<FaultOracle>> oracles;
    for (JobSpec &job : campaign.jobs) {
        if (job.faults.empty())
            continue;
        auto &oracle = oracles[job.workloads.front()];
        if (!oracle) {
            oracle = std::make_unique<FaultOracle>(
                FaultOracle::goldenImage(job.workloads, job.options));
        }
        attachFaultOracle(job, oracle.get());
    }

    auto timeCampaign = [&campaign](SnapshotCache *snapshots, double &s) {
        RunnerConfig cfg;
        cfg.jobs = 1;
        cfg.max_attempts = 1;
        cfg.snapshots = snapshots;
        const auto t0 = Clock::now();
        auto results = runCampaign(campaign, cfg);
        s = std::chrono::duration<double>(Clock::now() - t0).count();
        return results;
    };

    double scratch_s = 0, forked_s = 0;
    const auto scratch = timeCampaign(nullptr, scratch_s);
    SnapshotCache cache;
    const auto forked = timeCampaign(&cache, forked_s);

    perf.from_scratch_seconds = scratch_s;
    perf.forked_seconds = forked_s;
    perf.speedup = forked_s > 0 ? scratch_s / forked_s : 0;

    perf.verdicts_match = scratch.size() == forked.size();
    for (std::size_t i = 0;
         perf.verdicts_match && i < scratch.size(); ++i) {
        perf.verdicts_match =
            scratch[i].ok() && forked[i].ok() &&
            scratch[i].has_verdict == forked[i].has_verdict &&
            scratch[i].verdict == forked[i].verdict &&
            scratch[i].detection_latency == forked[i].detection_latency &&
            scratch[i].run.total_cycles == forked[i].run.total_cycles;
    }
    return perf;
}

/**
 * Time one late-window fault campaign three ways — from scratch (no
 * snapshots), through the PR-5 per-trial snapshot-restore path, and
 * through the fork()-COW executor — and check all three produce
 * identical per-trial verdicts.
 *
 * The gated number is the same metric fault_campaign.speedup records
 * for the PR-5 path: campaign wall time relative to the from-scratch
 * reference.  The strikes come from the last cycle window, the stratum
 * where per-trial dispatch cost dominates the measurement: every trial
 * shares one barrier, so the parent constructs and restores exactly
 * one simulation and each child inherits it for free, while the
 * restore path re-pays construction + image deserialisation per trial
 * and the scratch path re-runs the whole prefix per trial.
 */
ForkExecPerf
benchForkExecutor(const std::vector<std::string> &workloads,
                  unsigned trials, std::uint64_t warmup,
                  std::uint64_t measure)
{
    using Clock = std::chrono::steady_clock;

    ForkExecPerf perf;
    perf.workloads = workloads;
    perf.trials = trials;
    perf.warmup = warmup;
    perf.measure = measure;

    SimOptions base;
    base.mode = SimMode::Srt;
    base.warmup_insts = warmup;
    base.measure_insts = measure;

    // Probe the run length, then re-probe with the barrier schedule:
    // the quiesce drains at each barrier are part of the simulated
    // timing, so the barriered run is substantially longer and the
    // "late" strike must be placed against its real end.
    std::uint64_t total_cycles = 0;
    {
        Simulation probe(workloads, base);
        total_cycles = probe.run().total_cycles;
    }
    base.snapshot_every = std::max<std::uint64_t>(1, total_cycles / 32);
    {
        Simulation probe(workloads, base);
        total_cycles = probe.run().total_cycles;
    }
    const Cycle strike =
        static_cast<Cycle>(total_cycles - total_cycles / 40);

    Campaign campaign;
    campaign.name = "perf-fork-exec";
    for (unsigned t = 0; t < trials; ++t) {
        JobSpec spec;
        spec.id = t;
        spec.label = "perf-fork-exec:trial" + std::to_string(t);
        spec.workloads = workloads;
        spec.options = base;
        spec.seed = 0x46'4f'52'4bull + t;
        FaultRecord fault;
        fault.kind = FaultRecord::Kind::TransientReg;
        fault.when = strike;
        fault.tid = 0;
        fault.reg = 1 + t % 15;
        fault.bit = (7 * t) % 64;
        spec.faults.push_back(fault);
        campaign.jobs.push_back(std::move(spec));
    }

    FaultOracle oracle(FaultOracle::goldenImage(workloads, base));
    for (JobSpec &job : campaign.jobs)
        attachFaultOracle(job, &oracle);

    RunnerConfig cfg;
    cfg.jobs = 1;
    cfg.max_attempts = 1;

    // From-scratch reference: same options (so the barrier drains and
    // with them the verdicts are identical), but no cache to restore
    // from — every trial re-simulates the whole prefix.
    cfg.snapshots = nullptr;
    const auto t0 = Clock::now();
    const auto scratch = runCampaign(campaign, cfg);
    perf.scratch_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // PR-5 path: every trial builds a Simulation and restores the
    // snapshot image into it; the producer run is charged to this side.
    SnapshotCache restore_cache;
    cfg.snapshots = &restore_cache;
    const auto t1 = Clock::now();
    const auto restored = runCampaign(campaign, cfg);
    perf.snapshot_seconds =
        std::chrono::duration<double>(Clock::now() - t1).count();

    // fork()-COW path, fresh snapshot cache so the producer run is
    // charged to this side too.
    SnapshotCache fork_cache;
    ForkExecutorConfig fcfg;
    fcfg.runner = cfg;
    fcfg.runner.snapshots = &fork_cache;
    // One warmed parent per barrier; the bench wants zero LRU churn.
    fcfg.warm_cache = 64;
    ForkExecutor exec(fcfg);
    const auto t2 = Clock::now();
    const auto forked = exec.run(campaign.jobs);
    perf.fork_seconds =
        std::chrono::duration<double>(Clock::now() - t2).count();
    perf.warm_builds = exec.stats().warm_builds;

    perf.speedup = perf.fork_seconds > 0
                       ? perf.scratch_seconds / perf.fork_seconds
                       : 0;
    perf.snapshot_speedup =
        perf.snapshot_seconds > 0
            ? perf.scratch_seconds / perf.snapshot_seconds
            : 0;

    perf.verdicts_match =
        scratch.size() == forked.size() &&
        restored.size() == forked.size();
    for (std::size_t i = 0;
         perf.verdicts_match && i < forked.size(); ++i) {
        auto same = [&](const JobResult &a, const JobResult &b) {
            return a.ok() && b.ok() &&
                   a.has_verdict == b.has_verdict &&
                   a.verdict == b.verdict &&
                   a.detection_latency == b.detection_latency &&
                   a.run.total_cycles == b.run.total_cycles;
        };
        perf.verdicts_match = same(scratch[i], forked[i]) &&
                              same(restored[i], forked[i]);
    }
    return perf;
}

std::string
perfJson(const std::vector<ModePerf> &modes, std::uint64_t warmup,
         std::uint64_t measure, unsigned repeats,
         const std::vector<std::string> &workloads,
         const FaultCampaignPerf &faults, const ForkExecPerf &fork_exec)
{
    std::ostringstream os;
    os << "{\"schema\":\"rmtsim-bench-perf-v1\""
       << ",\"warmup_insts\":" << warmup
       << ",\"measure_insts\":" << measure
       << ",\"repeats\":" << repeats
       << ",\"workloads\":[";
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        os << (i ? "," : "") << "\"" << jsonEscape(workloads[i])
           << "\"";
    }
    os << "],\"modes\":[";
    for (std::size_t m = 0; m < modes.size(); ++m) {
        const ModePerf &mp = modes[m];
        os << (m ? "," : "") << "{\"mode\":\"" << modeName(mp.mode)
           << "\",\"kips\":" << jsonNum(mp.kips)
           << ",\"committed\":" << mp.committed << ",\"per_workload\":[";
        for (std::size_t w = 0; w < mp.workloads.size(); ++w) {
            const WorkloadPerf &wp = mp.workloads[w];
            os << (w ? "," : "") << "{\"workload\":\""
               << jsonEscape(wp.workload)
               << "\",\"kips\":" << jsonNum(wp.kips)
               << ",\"committed\":" << wp.committed << "}";
        }
        os << "]}";
    }
    os << "],\"fault_campaign\":{\"workloads\":[";
    for (std::size_t i = 0; i < faults.workloads.size(); ++i) {
        os << (i ? "," : "") << "\"" << jsonEscape(faults.workloads[i])
           << "\"";
    }
    os << "],\"trials\":" << faults.trials
       << ",\"from_scratch_seconds\":"
       << jsonNum(faults.from_scratch_seconds)
       << ",\"forked_seconds\":" << jsonNum(faults.forked_seconds)
       << ",\"speedup\":" << jsonNum(faults.speedup)
       << ",\"verdicts_match\":"
       << (faults.verdicts_match ? "true" : "false") << "}"
       << ",\"fork_executor\":{\"workloads\":[";
    for (std::size_t i = 0; i < fork_exec.workloads.size(); ++i) {
        os << (i ? "," : "") << "\""
           << jsonEscape(fork_exec.workloads[i]) << "\"";
    }
    os << "],\"trials\":" << fork_exec.trials
       << ",\"warmup_insts\":" << fork_exec.warmup
       << ",\"measure_insts\":" << fork_exec.measure
       << ",\"from_scratch_seconds\":"
       << jsonNum(fork_exec.scratch_seconds)
       << ",\"snapshot_seconds\":" << jsonNum(fork_exec.snapshot_seconds)
       << ",\"fork_seconds\":" << jsonNum(fork_exec.fork_seconds)
       << ",\"fork_campaign_speedup\":" << jsonNum(fork_exec.speedup)
       << ",\"snapshot_speedup\":" << jsonNum(fork_exec.snapshot_speedup)
       << ",\"warm_builds\":" << fork_exec.warm_builds
       << ",\"verdicts_match\":"
       << (fork_exec.verdicts_match ? "true" : "false") << "}}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::string json_path;
    std::string baseline_path;
    double max_regress = 10.0;
    unsigned repeats = 3;
    std::uint64_t measure = 20000;
    std::uint64_t warmup = 2000;
    std::vector<std::string> workloads = {"gcc", "swim", "compress"};
    unsigned fault_trials = 16;
    double min_fork_speedup = 1.5;
    double min_fork_exec_speedup = 3.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json") {
            json_path = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--max-regress") {
            max_regress = std::atof(next());
        } else if (arg == "--repeat") {
            repeats = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--insts") {
            measure = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--workloads") {
            workloads = splitList(next());
        } else if (arg == "--fault-trials") {
            fault_trials = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--min-fork-speedup") {
            min_fork_speedup = std::atof(next());
        } else if (arg == "--min-fork-exec-speedup") {
            min_fork_exec_speedup = std::atof(next());
        } else {
            usage();
            return 2;
        }
    }
    if (repeats == 0)
        repeats = 1;
    if (workloads.empty()) {
        usage();
        return 2;
    }

    const SimMode all_modes[] = {SimMode::Base, SimMode::Base2,
                                 SimMode::Srt, SimMode::Lockstep,
                                 SimMode::Crt};

    RunnerConfig cfg;   // executeJob runs inline; no pool, no retries
    cfg.max_attempts = 1;

    std::vector<ModePerf> modes;
    for (const SimMode mode : all_modes) {
        ModePerf mp;
        mp.mode = mode;
        double seconds_total = 0;
        for (const std::string &workload : workloads) {
            JobSpec spec;
            spec.id = 0;
            spec.label = std::string(modeName(mode)) + ":" + workload;
            spec.workloads = {workload};
            spec.options.mode = mode;
            spec.options.warmup_insts = warmup;
            spec.options.measure_insts = measure;
            spec.seed = 0x52'4d'54'53'49'4dull;     // fixed ("RMTSIM")

            WorkloadPerf wp;
            wp.workload = workload;
            for (unsigned r = 0; r < repeats; ++r) {
                const JobResult res = executeJob(spec, cfg);
                if (!res.ok())
                    fatal("bench_perf job '%s' failed: %s",
                          spec.label.c_str(), res.error.c_str());
                std::uint64_t committed = 0;
                for (const ThreadResult &t : res.run.threads)
                    committed += t.committed;
                wp.committed = committed;
                if (res.run.host.sim_kips > wp.kips)
                    wp.kips = res.run.host.sim_kips;
            }
            if (wp.kips <= 0)
                fatal("bench_perf: zero KIPS for '%s'",
                      spec.label.c_str());
            mp.committed += wp.committed;
            seconds_total +=
                static_cast<double>(wp.committed) / (wp.kips * 1e3);
            mp.workloads.push_back(std::move(wp));
        }
        mp.kips = static_cast<double>(mp.committed) /
                  (seconds_total * 1e3);
        modes.push_back(std::move(mp));
    }

    std::printf("%-10s %12s %12s\n", "mode", "kips", "committed");
    for (const ModePerf &mp : modes) {
        std::printf("%-10s %12.1f %12llu\n", modeName(mp.mode),
                    mp.kips,
                    static_cast<unsigned long long>(mp.committed));
    }

    // Snapshot-forked fault campaign vs from-scratch (two workloads,
    // serial).  Verdict identity is a hard correctness gate; the
    // speedup gate can be relaxed with --min-fork-speedup 0.  The
    // campaign runs a larger budget than the KIPS sweep: forking saves
    // the pre-fault prefix, which the short KIPS budget would hide
    // behind per-trial constants (build + oracle classification).
    const FaultCampaignPerf faults = benchFaultCampaign(
        {"gcc", "compress"}, fault_trials, warmup, 4 * measure);
    std::printf("fault campaign (%u trials x %zu workloads): "
                "%.2fs scratch, %.2fs forked, %.2fx, verdicts %s\n",
                faults.trials, faults.workloads.size(),
                faults.from_scratch_seconds, faults.forked_seconds,
                faults.speedup,
                faults.verdicts_match ? "match" : "DIFFER");
    if (!faults.verdicts_match)
        fatal("bench_perf: snapshot-forked fault campaign verdicts "
              "differ from the from-scratch run");
    if (faults.speedup < min_fork_speedup) {
        std::fprintf(stderr,
                     "bench_perf: forked fault campaign speedup %.2fx "
                     "below the %.2fx gate\n",
                     faults.speedup, min_fork_speedup);
        return 1;
    }

    // fork()-COW executor on the fault-coverage bench, scored on the
    // same from-scratch-relative metric as fault_campaign.speedup
    // above (the PR-5 snapshot path's 1.7x): a late-window campaign
    // where every trial shares one barrier, so the parent warms one
    // simulation and the children inherit it via COW.  Verdict
    // identity across all three paths is the hard gate; the speedup
    // gate can be relaxed on platforms without fork() via
    // --min-fork-exec-speedup 0.
    ForkExecPerf fork_exec;
    if (ForkExecutor::supported()) {
        fork_exec = benchForkExecutor({"gcc", "compress"},
                                      4 * fault_trials, 500, 8000);
        std::printf("fork executor (%u trials, %llu warm builds): "
                    "%.2fs scratch, %.2fs restore-per-trial, "
                    "%.2fs forked -> %.2fx vs scratch "
                    "(restore path %.2fx), verdicts %s\n",
                    fork_exec.trials,
                    static_cast<unsigned long long>(
                        fork_exec.warm_builds),
                    fork_exec.scratch_seconds,
                    fork_exec.snapshot_seconds, fork_exec.fork_seconds,
                    fork_exec.speedup, fork_exec.snapshot_speedup,
                    fork_exec.verdicts_match ? "match" : "DIFFER");
        if (!fork_exec.verdicts_match)
            fatal("bench_perf: fork()-executor campaign verdicts "
                  "differ from the in-process paths");
        if (fork_exec.speedup < min_fork_exec_speedup) {
            std::fprintf(stderr,
                         "bench_perf: fork executor speedup %.2fx "
                         "below the %.2fx gate\n",
                         fork_exec.speedup, min_fork_exec_speedup);
            return 1;
        }
        // Sanity band, not a race: on a single-CPU host the child's
        // copy-on-write page faults roughly offset the construction +
        // restore the fork saves, so the two in-process-equivalent
        // paths finish within noise of each other.  Catch only a
        // grossly slower executor.
        if (fork_exec.fork_seconds >
            1.10 * fork_exec.snapshot_seconds) {
            std::fprintf(stderr,
                         "bench_perf: fork executor (%.2fs) is more "
                         "than 10%% slower than the per-trial restore "
                         "path (%.2fs)\n",
                         fork_exec.fork_seconds,
                         fork_exec.snapshot_seconds);
            return 1;
        }
    } else {
        std::printf("fork executor: not supported on this platform, "
                    "skipped\n");
        fork_exec.verdicts_match = true;
    }

    const std::string doc = perfJson(modes, warmup, measure, repeats,
                                     workloads, faults, fork_exec);
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            fatal("bench_perf: cannot write %s", json_path.c_str());
        out << doc;
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (baseline_path.empty())
        return 0;

    // ------------------------------------------ regression gate
    std::ifstream in(baseline_path);
    if (!in)
        fatal("bench_perf: cannot read baseline %s",
              baseline_path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    JsonValue base;
    std::string err;
    if (!parseJson(buf.str(), base, err))
        fatal("bench_perf: baseline %s: %s", baseline_path.c_str(),
              err.c_str());
    const JsonValue *base_modes = base.find("modes");
    if (!base_modes || !base_modes->isArray())
        fatal("bench_perf: baseline %s has no \"modes\" array",
              baseline_path.c_str());

    int failures = 0;
    std::printf("\nvs %s (max regression %.0f%%):\n",
                baseline_path.c_str(), max_regress);
    for (const ModePerf &mp : modes) {
        const JsonValue *ref = nullptr;
        for (const JsonValue &entry : base_modes->array()) {
            if (entry.strOr("mode", "") == modeName(mp.mode)) {
                ref = &entry;
                break;
            }
        }
        if (!ref) {
            std::printf("  %-10s (no baseline entry, skipped)\n",
                        modeName(mp.mode));
            continue;
        }
        const double base_kips = ref->numberOr("kips", 0);
        if (base_kips <= 0)
            continue;
        const double delta = 100.0 * (mp.kips - base_kips) / base_kips;
        const bool bad = delta < -max_regress;
        std::printf("  %-10s %12.1f -> %12.1f  %+6.1f%%%s\n",
                    modeName(mp.mode), base_kips, mp.kips, delta,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (failures) {
        std::fprintf(stderr,
                     "bench_perf: %d mode(s) regressed more than "
                     "%.0f%%\n",
                     failures, max_regress);
        return 1;
    }
    std::printf("perf gate: OK\n");
    return 0;
}
