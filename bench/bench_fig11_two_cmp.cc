/**
 * @file
 * Lockstepping vs CRT with two logical threads [reconstructed]: each
 * lockstepped core runs both programs as a 2-context SMT; CRT
 * cross-couples the cores so each runs one leading and one (cheap)
 * trailing thread.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    printHeader("Lockstep vs CRT, two logical threads (SMT-Efficiency)",
                {"Lock0", "Lock8", "CRT", "CRT/Lock8"});

    std::vector<double> l0s, l8s, crts;
    for (const auto &mix : twoProgramMixes()) {
        SimOptions o = opts;
        o.mode = SimMode::Lockstep;
        o.checker_penalty = 0;
        const double l0 = baseline.efficiency(runSimulation(mix, o));
        o.checker_penalty = 8;
        const double l8 = baseline.efficiency(runSimulation(mix, o));
        o.mode = SimMode::Crt;
        const double crt = baseline.efficiency(runSimulation(mix, o));
        printRow(mixName(mix), {l0, l8, crt, crt / l8});
        l0s.push_back(l0);
        l8s.push_back(l8);
        crts.push_back(crt);
    }
    printRow("MEAN", {mean(l0s), mean(l8s), mean(crts),
                      mean(crts) / mean(l8s)});
    std::printf("\npaper: CRT outperforms lockstepping on multithreaded "
                "workloads\n");
    std::printf("here:  CRT beats Lock8 by %.0f%% on average\n",
                100 * (mean(crts) / mean(l8s) - 1));
    return 0;
}
