/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: canonical run
 * budgets (paper Section 6.2, scaled to the simulator), and aligned
 * table printing so every bench emits the same row format the paper's
 * figures plot.
 */

#ifndef RMTSIM_BENCH_BENCH_UTIL_HH
#define RMTSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace rmtbench
{

/** Worker threads for campaign-driven benches: RMTSIM_JOBS if set,
 *  otherwise 0 = one per hardware core (ThreadPool's default). */
inline unsigned
benchJobs()
{
    if (const char *env = std::getenv("RMTSIM_JOBS"))
        return static_cast<unsigned>(std::atoi(env));
    return 0;
}

/** Canonical bench budgets: warm structures, then measure (the paper
 *  warms 1M and measures 15M; we scale both by ~375x for simulator
 *  turnaround, which our workloads are tuned to reach steady state
 *  within). */
inline rmt::SimOptions
standardOptions()
{
    rmt::SimOptions o;
    o.warmup_insts = 20000;
    o.measure_insts = 40000;
    return o;
}

inline void
printHeader(const char *title, const std::vector<std::string> &columns)
{
    std::printf("%s\n", title);
    std::printf("%-12s", "benchmark");
    for (const auto &c : columns)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &values,
         const char *fmt = " %12.3f")
{
    std::printf("%-12s", name.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

inline std::string
mixName(const std::vector<std::string> &mix)
{
    std::string name;
    for (const auto &w : mix) {
        if (!name.empty())
            name += "+";
        name += w.substr(0, 4);
    }
    return name;
}

} // namespace rmtbench

#endif // RMTSIM_BENCH_BENCH_UTIL_HH
