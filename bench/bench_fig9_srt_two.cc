/**
 * @file
 * SRT with two logical threads [reconstructed; the paper reports ~40%
 * degradation, reduced to ~32% with per-thread store queues]: the six
 * two-program mixes of {gcc, go, fpppp, swim} run as two redundant
 * pairs consuming all four hardware contexts.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    printHeader("SRT, two logical threads (four hardware contexts); "
                "SMT-Efficiency vs single-thread base",
                {"Base(2thr)", "SRT", "SRT+ptsq"});

    std::vector<double> bases, srts, ptsqs;
    for (const auto &mix : twoProgramMixes()) {
        SimOptions o = opts;
        o.mode = SimMode::Base;
        const double base = baseline.efficiency(runSimulation(mix, o));

        o.mode = SimMode::Srt;
        const double srt = baseline.efficiency(runSimulation(mix, o));

        o.per_thread_store_queues = true;
        const double ptsq = baseline.efficiency(runSimulation(mix, o));

        printRow(mixName(mix), {base, srt, ptsq});
        bases.push_back(base);
        srts.push_back(srt);
        ptsqs.push_back(ptsq);
    }
    printRow("MEAN", {mean(bases), mean(srts), mean(ptsqs)});
    std::printf("\npaper: two-logical-thread SRT degradation ~40%%; "
                "per-thread store queues -> ~32%%\n");
    std::printf("here:  %.0f%%; ptsq -> %.0f%%\n",
                100 * (1 - mean(srts)), 100 * (1 - mean(ptsqs)));
    return 0;
}
