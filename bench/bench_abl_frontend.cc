/**
 * @file
 * Ablation A1 (Section 4.4's design argument): how should the trailing
 * thread's front end be driven?
 *
 *  - LPQ: the paper's line prediction queue (perfect chunk stream);
 *  - BOQ: the original SRT branch outcome queue (perfect branch
 *    outcomes, but the line predictor still misfetches);
 *  - SharedLP: BOQ plus sharing the leading thread's line-predictor
 *    entries (the paper's rejected strawman).
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    printHeader("Trailing front-end ablation (SRT SMT-Efficiency, one "
                "logical thread)",
                {"LPQ", "BOQ", "SharedLP"});

    std::vector<double> lpqs, boqs, shareds;
    for (const auto &name : spec95Names()) {
        SimOptions o = opts;
        o.mode = SimMode::Srt;

        o.trailing_fetch = TrailingFetchMode::LinePredictionQueue;
        const double lpq = baseline.efficiency(runSimulation({name}, o));

        o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
        o.slack_fetch = 64;     // the original SRT pairing
        const double boq = baseline.efficiency(runSimulation({name}, o));

        o.trailing_fetch = TrailingFetchMode::SharedLinePredictor;
        const double shared =
            baseline.efficiency(runSimulation({name}, o));

        printRow(name, {lpq, boq, shared});
        lpqs.push_back(lpq);
        boqs.push_back(boq);
        shareds.push_back(shared);
    }
    printRow("MEAN", {mean(lpqs), mean(boqs), mean(shareds)});
    std::printf("\npaper: the LPQ eliminates all trailing misfetches; "
                "sharing the line predictor aliases badly\n");
    return 0;
}
