/**
 * @file
 * Table 1: base processor parameters.  Prints the configuration the
 * simulator instantiates so it can be diffed against the paper's table.
 */

#include <cstdio>

#include "cpu/smt_params.hh"
#include "mem/mem_system.hh"

int
main()
{
    const rmt::SmtParams p;
    const rmt::MemSystemParams m;

    std::printf("Table 1: base processor parameters (rmtsim defaults)\n");
    std::printf("%-34s %s\n", "parameter", "value");
    std::printf("%-34s %u x 8-instruction chunks/cycle\n", "fetch width",
                p.fetch_chunks_per_cycle);
    std::printf("%-34s %u entries\n", "line predictor",
                p.linepred.entries);
    std::printf("%-34s %llu KB, %u-way, %u B blocks\n", "L1 I-cache",
                static_cast<unsigned long long>(p.icache.size_bytes /
                                                1024),
                p.icache.assoc, p.icache.block_bytes);
    std::printf("%-34s %u Kbit-equivalent tables\n", "branch predictor",
                (p.bpred.gshare_entries + p.bpred.bimodal_entries +
                 p.bpred.chooser_entries) * 2 / 1024);
    std::printf("%-34s %u-entry SSIT store sets\n", "mem dependence pred",
                p.store_sets.ssit_entries);
    std::printf("%-34s one %u-instruction chunk/cycle\n", "map width",
                p.map_width);
    std::printf("%-34s %u entries (two %u-entry halves)\n",
                "instruction queue", p.iq_entries, p.iq_entries / 2);
    std::printf("%-34s %u per cycle\n", "issue width", p.issue_width);
    std::printf("%-34s %u physical, %u architectural (%u/thread)\n",
                "register file", p.phys_regs, 4 * rmt::numArchRegs,
                rmt::numArchRegs);
    std::printf("%-34s %u int, %u logic, %u mem, %u fp\n",
                "functional units", 2 * p.int_units_per_half,
                2 * p.logic_units_per_half, 2 * p.mem_units_per_half,
                2 * p.fp_units_per_half);
    std::printf("%-34s %llu KB, %u-way, %u B blocks, %u ld ports\n",
                "L1 D-cache",
                static_cast<unsigned long long>(p.dcache.size_bytes /
                                                1024),
                p.dcache.assoc, p.dcache.block_bytes,
                p.max_loads_per_cycle);
    std::printf("%-34s %u entries\n", "load queue", p.load_queue_entries);
    std::printf("%-34s %u entries\n", "store queue",
                p.store_queue_entries);
    std::printf("%-34s %u x %u B entries\n", "coalescing merge buffer",
                p.merge_buffer.entries, p.merge_buffer.block_bytes);
    std::printf("%-34s %llu MB, %u-way, %u B blocks\n", "L2 cache",
                static_cast<unsigned long long>(m.l2.size_bytes /
                                                (1024 * 1024)),
                m.l2.assoc, m.l2.block_bytes);
    std::printf("%-34s %u channels, %u-cycle latency\n", "memory",
                m.mem.channels, m.mem.latency);
    std::printf("%-34s I=%u P=%u Q=%u+%u R=%u M=%u cycles\n",
                "pipeline segments", p.ibox_latency, p.pbox_latency,
                p.qbox_front_latency, p.qbox_back_latency, p.rbox_latency,
                p.mbox_latency);
    std::printf("%-34s LPQ %u cycles, LVQ %u cycles, cross-core +%u\n",
                "SRT/CRT forwarding", p.lpq_forward_latency,
                p.lvq_forward_latency, p.cross_core_latency);
    return 0;
}
