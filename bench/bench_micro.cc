/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the
 * hot simulator structures and of whole-core simulation.
 */

#include <benchmark/benchmark.h>

#include "cpu/smt_cpu.hh"
#include "isa/arch_state.hh"
#include "mem/cache.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/line_predictor.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace rmt;

static void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{"c", 64 * 1024, 2, 64});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        if (!cache.probe(addr))
            cache.fill(addr);
        addr = (addr + 64) & 0xFFFFF;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

static void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bp(BranchPredictorParams{});
    Addr pc = 0x1000;
    for (auto _ : state) {
        const auto snap = bp.history(0);
        const bool taken = bp.predict(0, pc);
        bp.update(0, pc, !taken, snap);
        pc = (pc + 4) & 0xFFFF;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

static void
BM_LinePredict(benchmark::State &state)
{
    LinePredictor lp(LinePredictorParams{});
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lp.predict(0, pc));
        lp.train(0, pc, pc + 32);
        pc = (pc + 32) & 0xFFFFF;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinePredict);

static void
BM_ArchStateStep(benchmark::State &state)
{
    const Workload w = buildWorkload("compress");
    auto mem = w.makeMemory();
    ArchState st(w.program, *mem);
    for (auto _ : state)
        benchmark::DoNotOptimize(st.step().pc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArchStateStep);

static void
BM_CoreTick(benchmark::State &state)
{
    const Workload w = buildWorkload("compress");
    auto mem = w.makeMemory();
    MemSystem ms{MemSystemParams{}};
    SmtParams p;
    p.num_threads = 1;
    SmtCpu cpu(p, ms, 0);
    cpu.addThread(0, w.program, *mem, 0, Role::Single);
    for (auto _ : state)
        cpu.tick();
    state.SetItemsProcessed(state.iterations());
    state.counters["committed"] =
        static_cast<double>(cpu.committed(0));
}
BENCHMARK(BM_CoreTick);

static void
BM_SrtSimulationKiloInst(benchmark::State &state)
{
    for (auto _ : state) {
        SimOptions o;
        o.mode = SimMode::Srt;
        o.warmup_insts = 0;
        o.measure_insts = 1000;
        benchmark::DoNotOptimize(
            runSimulation({"li"}, o).total_cycles);
    }
    state.SetItemsProcessed(state.iterations() * 2000);  // both copies
}
BENCHMARK(BM_SrtSimulationKiloInst);

BENCHMARK_MAIN();
