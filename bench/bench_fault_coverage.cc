/**
 * @file
 * Fault-coverage experiment (Sections 2.1, 4.5): deterministic fault
 * campaigns against the SRT machine, driven through the campaign
 * runner so the independent trials fan out over all host cores
 * (override with RMTSIM_JOBS=N).
 *
 *  1. Transient register strikes: random (register, bit, cycle) flips
 *     in one redundant copy.  Outcomes: detected (store comparator /
 *     LVQ / control check), or benign (flip never reached an output —
 *     verified by comparing the final memory image against a golden
 *     run).  Silent data corruption would mean a detection miss.
 *  2. LVQ strikes with and without ECC.
 *  3. Permanent functional-unit faults with and without preferential
 *     space redundancy: without PSR both copies can use the broken
 *     unit, corrupt identically, compare equal, and silently corrupt
 *     memory — exactly the coverage hole PSR closes.
 *
 * Each trial is one JobSpec whose fault parameters are drawn at
 * campaign-build time, so the grid is identical however many workers
 * execute it; a FaultOracle chained onto post_run classifies the
 * outcome against the golden memory image while the trial's Simulation
 * is still alive, attributing detection latency to the pair the fault
 * actually landed in.
 */

#include "bench_util.hh"
#include "common/random.hh"
#include "rmt/fault_oracle.hh"
#include "runner/runner.hh"

using namespace rmt;
using namespace rmtbench;

namespace
{

SimOptions
campaignOptions()
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = 12000;
    return o;
}

struct Tally
{
    unsigned detected = 0;
    unsigned benign = 0;
    unsigned silent = 0;    ///< memory corrupted, nothing detected
    unsigned hung = 0;      ///< no forward progress / cap exceeded
    double latency_sum = 0; ///< fault activation -> first detection
    unsigned latency_n = 0; ///< trials with a valid latency
};

double
extraValue(const JobResult &r, const char *key)
{
    for (const auto &[k, v] : r.extra) {
        if (k == key)
            return v;
    }
    return 0;
}

Tally
tally(const std::vector<JobResult> &results)
{
    Tally out;
    for (const JobResult &r : results) {
        if (!r.ok())
            fatal("fault trial '%s' failed: %s", r.label.c_str(),
                  r.error.c_str());
        if (!r.has_verdict)
            fatal("fault trial '%s' has no verdict", r.label.c_str());
        switch (r.verdict) {
          case FaultVerdict::Detected:
            ++out.detected;
            if (r.detection_latency >= 0) {
                out.latency_sum += r.detection_latency;
                ++out.latency_n;
            }
            break;
          case FaultVerdict::Sdc:
            ++out.silent;
            break;
          case FaultVerdict::Hang:
            ++out.hung;
            break;
          case FaultVerdict::Masked:
            ++out.benign;
            break;
        }
    }
    return out;
}

Tally
transientRegCampaign(const std::string &workload, unsigned trials,
                     const FaultOracle &oracle, unsigned max_reg)
{
    CampaignBuilder builder("reg-strikes", 0xFA117 + max_reg);
    builder.base(campaignOptions())
        .workloads({workload})
        .transientRegTrials(trials, max_reg);
    Campaign campaign = builder.build();
    for (JobSpec &spec : campaign.jobs)
        attachFaultOracle(spec, &oracle);

    RunnerConfig cfg;
    cfg.jobs = benchJobs();
    return tally(runCampaign(campaign, cfg));
}

Tally
permanentFuCampaign(const std::string &workload, bool psr,
                    unsigned trials, const FaultOracle &oracle)
{
    // Same strike distribution as the original sequential campaign:
    // hit every integer/logic unit in turn (ids 0..15, 16..31).
    Campaign campaign;
    campaign.name = "fu-faults";
    Random rng(0xFE11);
    for (unsigned i = 0; i < trials; ++i) {
        JobSpec spec;
        spec.id = campaign.jobs.size();
        spec.label = std::string("fu:") + workload +
                     (psr ? " psr=1" : " psr=0") +
                     " trial=" + std::to_string(i);
        spec.workloads = {workload};
        spec.options = campaignOptions();
        spec.options.preferential_space_redundancy = psr;
        FaultRecord f;
        f.kind = FaultRecord::Kind::PermanentFu;
        f.when = 500;
        f.core = 0;
        f.fuIndex = static_cast<unsigned>(
            i % 2 ? 16 + rng.range(8) : rng.range(8));
        f.mask = std::uint64_t{1} << rng.range(16);
        spec.faults.push_back(f);
        attachFaultOracle(spec, &oracle);
        campaign.jobs.push_back(std::move(spec));
    }

    RunnerConfig cfg;
    cfg.jobs = benchJobs();
    return tally(runCampaign(campaign, cfg));
}

void
printOutcome(const char *label, const Tally &o)
{
    std::printf("%-38s detected %3u  benign %3u  SILENT %3u"
                "  hung %3u  mean latency %6.0f\n",
                label, o.detected, o.benign, o.silent, o.hung,
                o.latency_n ? o.latency_sum / o.latency_n : 0.0);
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::printf("Fault-coverage campaigns (SRT, 12k instructions)\n\n");

    // 1. Transient register strikes: across the full architectural
    //    file (AVF-style: most strikes land in dead state and are
    //    benign), then restricted to the kernel's live registers.
    for (const char *wl : {"compress", "gcc"}) {
        const FaultOracle oracle(
            FaultOracle::goldenImage({wl}, campaignOptions()));
        const Tally all = transientRegCampaign(wl, 40, oracle,
                                                 numArchRegs);
        printOutcome((std::string("reg strikes (all regs), ") + wl)
                         .c_str(),
                     all);
        const Tally live = transientRegCampaign(wl, 40, oracle, 14);
        printOutcome((std::string("reg strikes (live regs), ") + wl)
                         .c_str(),
                     live);
        if (all.silent + live.silent)
            std::printf("  WARNING: silent data corruption slipped "
                        "through output comparison!\n");
    }

    // 2. LVQ strikes with and without ECC: ten deterministic strike
    //    cycles per configuration, one job each.
    const FaultOracle lvq_oracle(
        FaultOracle::goldenImage({"gcc"}, campaignOptions()));
    for (bool ecc : {true, false}) {
        Campaign campaign;
        campaign.name = "lvq-strikes";
        for (unsigned i = 0; i < 10; ++i) {
            JobSpec spec;
            spec.id = campaign.jobs.size();
            spec.label = std::string("lvq:gcc ecc=") + (ecc ? "1" : "0") +
                         " trial=" + std::to_string(i);
            spec.workloads = {"gcc"};
            spec.options = campaignOptions();
            spec.options.lvq_ecc = ecc;
            FaultRecord f;
            f.kind = FaultRecord::Kind::TransientLvq;
            f.when = 1500 + 700 * i;
            f.core = 0;
            f.tid = 0;
            spec.faults.push_back(f);
            spec.post_run = [](Simulation &sim, const RunResult &,
                               JobResult &res) {
                res.extra.emplace_back(
                    "ecc_corrected",
                    static_cast<double>(sim.chip()
                                            .redundancy()
                                            .pair(0)
                                            .lvq.eccCorrections()));
            };
            attachFaultOracle(spec, &lvq_oracle);
            campaign.jobs.push_back(std::move(spec));
        }

        RunnerConfig cfg;
        cfg.jobs = benchJobs();
        const auto results = runCampaign(campaign, cfg);
        unsigned detected = 0, corrected = 0;
        for (const JobResult &r : results) {
            if (!r.ok())
                fatal("LVQ trial '%s' failed: %s", r.label.c_str(),
                      r.error.c_str());
            detected += r.has_verdict &&
                        r.verdict == FaultVerdict::Detected;
            corrected += static_cast<unsigned>(
                extraValue(r, "ecc_corrected"));
        }
        std::printf("%-38s detected %3u  ecc-corrected %3u\n",
                    ecc ? "LVQ strikes, ECC on (paper design)"
                        : "LVQ strikes, ECC off",
                    detected, corrected);
    }

    // 3. Permanent FU faults: the PSR coverage argument.
    std::printf("\n");
    const FaultOracle fu_oracle(
        FaultOracle::goldenImage({"applu"}, campaignOptions()));
    const Tally with_psr = permanentFuCampaign("applu", true, 20,
                                                 fu_oracle);
    const Tally no_psr = permanentFuCampaign("applu", false, 20,
                                               fu_oracle);
    printOutcome("permanent FU fault, PSR on", with_psr);
    printOutcome("permanent FU fault, PSR off", no_psr);
    std::printf("\npaper (Section 4.5): PSR makes corresponding "
                "instructions use distinct units, so a permanent fault "
                "corrupts only one copy and is detected; without PSR "
                "identical corruption can escape as silent data "
                "corruption.\n");
    return 0;
}
