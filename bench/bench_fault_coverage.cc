/**
 * @file
 * Fault-coverage experiment (Sections 2.1, 4.5): deterministic fault
 * campaigns against the SRT machine.
 *
 *  1. Transient register strikes: random (register, bit, cycle) flips
 *     in one redundant copy.  Outcomes: detected (store comparator /
 *     LVQ / control check), or benign (flip never reached an output —
 *     verified by comparing the final memory image against a golden
 *     run).  Silent data corruption would mean a detection miss.
 *  2. LVQ strikes with and without ECC.
 *  3. Permanent functional-unit faults with and without preferential
 *     space redundancy: without PSR both copies can use the broken
 *     unit, corrupt identically, compare equal, and silently corrupt
 *     memory — exactly the coverage hole PSR closes.
 */

#include <cstring>

#include "bench_util.hh"
#include "common/random.hh"

using namespace rmt;
using namespace rmtbench;

namespace
{

SimOptions
campaignOptions()
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = 12000;
    return o;
}

struct Outcome
{
    unsigned detected = 0;
    unsigned benign = 0;
    unsigned silent = 0;    ///< memory corrupted, nothing detected
    double latency_sum = 0; ///< fault activation -> first detection
};

/** Golden memory image of @p workload after a fault-free run. */
std::vector<std::uint8_t>
goldenImage(const std::string &workload)
{
    Simulation sim({workload}, campaignOptions());
    sim.run();
    const DataMemory &mem = sim.memory(0);
    return {mem.data(), mem.data() + mem.size()};
}

Outcome
transientRegCampaign(const std::string &workload, unsigned trials,
                     const std::vector<std::uint8_t> &golden,
                     unsigned max_reg)
{
    Outcome out;
    Random rng(0xFA117);
    for (unsigned i = 0; i < trials; ++i) {
        Simulation sim({workload}, campaignOptions());
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientReg;
        f.when = 1000 + rng.range(8000);
        f.core = 0;
        f.tid = static_cast<ThreadId>(rng.range(2));    // either copy
        f.reg = static_cast<RegIndex>(1 + rng.range(max_reg - 1));
        f.bit = static_cast<unsigned>(rng.range(64));
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        const bool corrupted =
            std::memcmp(sim.memory(0).data(), golden.data(),
                        golden.size()) != 0;
        if (r.detections > 0) {
            ++out.detected;
            out.latency_sum += static_cast<double>(
                sim.chip().redundancy().pair(0).detections().front()
                    .cycle - f.when);
        } else if (corrupted) {
            ++out.silent;
        } else {
            ++out.benign;
        }
    }
    return out;
}

Outcome
permanentFuCampaign(const std::string &workload, bool psr,
                    unsigned trials,
                    const std::vector<std::uint8_t> &golden)
{
    Outcome out;
    Random rng(0xFE11);
    for (unsigned i = 0; i < trials; ++i) {
        SimOptions o = campaignOptions();
        o.preferential_space_redundancy = psr;
        Simulation sim({workload}, o);
        FaultRecord f;
        f.kind = FaultRecord::Kind::PermanentFu;
        f.when = 500;
        f.core = 0;
        // Hit every integer/logic unit in turn (ids 0..15, 16..31).
        f.fuIndex = static_cast<unsigned>(
            i % 2 ? 16 + rng.range(8) : rng.range(8));
        f.mask = std::uint64_t{1} << rng.range(16);
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        const bool corrupted =
            std::memcmp(sim.memory(0).data(), golden.data(),
                        golden.size()) != 0;
        if (r.detections > 0) {
            ++out.detected;
            out.latency_sum += static_cast<double>(
                sim.chip().redundancy().pair(0).detections().front()
                    .cycle - f.when);
        } else if (corrupted) {
            ++out.silent;
        } else {
            ++out.benign;
        }
    }
    return out;
}

void
printOutcome(const char *label, const Outcome &o)
{
    std::printf("%-38s detected %3u  benign %3u  SILENT %3u"
                "  mean latency %6.0f\n",
                label, o.detected, o.benign, o.silent,
                o.detected ? o.latency_sum / o.detected : 0.0);
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::printf("Fault-coverage campaigns (SRT, 12k instructions)\n\n");

    // 1. Transient register strikes: across the full architectural
    //    file (AVF-style: most strikes land in dead state and are
    //    benign), then restricted to the kernel's live registers.
    for (const char *wl : {"compress", "gcc"}) {
        const auto golden = goldenImage(wl);
        const Outcome all = transientRegCampaign(wl, 40, golden,
                                                 numArchRegs);
        printOutcome((std::string("reg strikes (all regs), ") + wl)
                         .c_str(),
                     all);
        const Outcome live = transientRegCampaign(wl, 40, golden, 14);
        printOutcome((std::string("reg strikes (live regs), ") + wl)
                         .c_str(),
                     live);
        if (all.silent + live.silent)
            std::printf("  WARNING: silent data corruption slipped "
                        "through output comparison!\n");
    }

    // 2. LVQ strikes with and without ECC.
    for (bool ecc : {true, false}) {
        unsigned detected = 0, corrected = 0;
        for (unsigned i = 0; i < 10; ++i) {
            SimOptions o = campaignOptions();
            o.lvq_ecc = ecc;
            Simulation sim({"gcc"}, o);
            FaultRecord f;
            f.kind = FaultRecord::Kind::TransientLvq;
            f.when = 1500 + 700 * i;
            f.core = 0;
            f.tid = 0;
            sim.faultInjector().schedule(f);
            const RunResult r = sim.run();
            detected += r.detections > 0;
            corrected +=
                sim.chip().redundancy().pair(0).lvq.eccCorrections();
        }
        std::printf("%-38s detected %3u  ecc-corrected %3u\n",
                    ecc ? "LVQ strikes, ECC on (paper design)"
                        : "LVQ strikes, ECC off",
                    detected, corrected);
    }

    // 3. Permanent FU faults: the PSR coverage argument.
    std::printf("\n");
    const auto golden = goldenImage("applu");
    const Outcome with_psr = permanentFuCampaign("applu", true, 20,
                                                 golden);
    const Outcome no_psr = permanentFuCampaign("applu", false, 20,
                                               golden);
    printOutcome("permanent FU fault, PSR on", with_psr);
    printOutcome("permanent FU fault, PSR off", no_psr);
    std::printf("\npaper (Section 4.5): PSR makes corresponding "
                "instructions use distinct units, so a permanent fault "
                "corrupts only one copy and is detected; without PSR "
                "identical corruption can escape as silent data "
                "corruption.\n");
    return 0;
}
