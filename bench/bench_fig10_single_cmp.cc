/**
 * @file
 * Lockstepping vs CRT with one logical thread [reconstructed; the paper
 * reports CRT performing similarly to lockstepping on single-thread
 * workloads].  Lock0 is the ideal zero-cycle checker (== base), Lock8
 * the realistic 8-cycle checker.
 */

#include "bench_util.hh"

using namespace rmt;
using namespace rmtbench;

int
main()
{
    setInformEnabled(false);
    SimOptions opts = standardOptions();
    BaselineCache baseline(opts);

    printHeader("Lockstep vs CRT, one logical thread (SMT-Efficiency)",
                {"Lock0", "Lock8", "CRT"});

    std::vector<double> l0s, l8s, crts;
    for (const auto &name : spec95Names()) {
        SimOptions o = opts;
        o.mode = SimMode::Lockstep;
        o.checker_penalty = 0;
        const double l0 = baseline.efficiency(runSimulation({name}, o));
        o.checker_penalty = 8;
        const double l8 = baseline.efficiency(runSimulation({name}, o));
        o.mode = SimMode::Crt;
        const double crt = baseline.efficiency(runSimulation({name}, o));
        printRow(name, {l0, l8, crt});
        l0s.push_back(l0);
        l8s.push_back(l8);
        crts.push_back(crt);
    }
    printRow("MEAN", {mean(l0s), mean(l8s), mean(crts)});
    std::printf("\npaper: CRT performs similarly to lockstepping on "
                "single-thread workloads\n");
    std::printf("here:  CRT/Lock8 = %.3f\n", mean(crts) / mean(l8s));
    return 0;
}
