/**
 * @file
 * The extension surface in one program: a fault-tolerant "device
 * driver".
 *
 * A redundant (SRT) pair runs a driver loop that polls a volatile
 * memory-mapped device with uncached loads and posts results with
 * uncached stores, while timer interrupts fire asynchronously and a
 * cosmic-ray strike corrupts one copy mid-run.  Everything the paper
 * defers — uncached-input replication, uncached-output comparison,
 * interrupt replication — plus the recovery sequence it only alludes
 * to, cooperate to keep the device's view of the world correct.
 */

#include <cstdio>

#include "cmp/chip.hh"
#include "rmt/recovery.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex r4 = intReg(4);

constexpr Addr devBase = 0xF0000000;

struct DriverProgram
{
    Program program;
    Addr timer_handler;
};

DriverProgram
makeDriver(int iters)
{
    ProgramBuilder b("driver");
    b.li(r1, static_cast<std::int64_t>(devBase));
    b.li(r2, iters);
    b.label("loop");
    b.ldunc(r3, r1, 0);             // poll a volatile status register
    b.andi(r3, r3, 0xFFFF);
    b.addi(r3, r3, 7);
    b.stunc(r3, r1, 8);             // post the processed result
    b.li(r4, 0x2000);
    b.stq(r3, r4, 0);               // cached bookkeeping store
    b.addi(r2, r2, -1);
    b.bne(r2, intReg(0), "loop");
    b.halt();

    const Addr handler = b.here();
    b.label("timer");
    b.li(r4, 0x3000);
    b.ldq(r3, r4, 0);
    b.addi(r3, r3, 1);              // tick count
    b.stq(r3, r4, 0);
    b.iret();
    return DriverProgram{b.build(), handler};
}

} // namespace

int
main()
{
    const DriverProgram driver = makeDriver(200);

    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 2;
    Chip chip(cp);
    DataMemory mem(64 * 1024);

    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundantPair &pair = chip.redundancy().addPair(pp);
    pair.memory = &mem;
    RecoveryParams rp;
    rp.interval_insts = 400;
    pair.recovery = std::make_unique<RecoveryManager>(
        rp, driver.program.entry(), "driver.recovery");

    chip.cpu(0).addThread(0, driver.program, mem, 0, Role::Leading,
                          &pair);
    chip.cpu(0).addThread(1, driver.program, mem, 0, Role::Trailing,
                          &pair);

    // Timer interrupts...
    for (Cycle c = 500; c <= 3500; c += 1000)
        chip.cpu(0).scheduleInterrupt(0, c, driver.timer_handler);

    // ...and a particle strike on the leading copy's device pointer.
    FaultInjector injector;
    FaultRecord strike;
    strike.kind = FaultRecord::Kind::TransientReg;
    strike.when = 2000;
    strike.core = 0;
    strike.tid = 0;
    strike.reg = r1;
    strike.bit = 4;
    injector.schedule(strike);
    chip.setFaultInjector(&injector);

    chip.run(2'000'000);

    std::printf("driver run %s after %llu cycles\n",
                chip.allDone() ? "completed" : "DID NOT complete",
                static_cast<unsigned long long>(chip.cycle()));
    std::printf("device: %llu volatile reads (one per poll, never "
                "duplicated), %llu writes (compared before leaving the "
                "sphere)\n",
                static_cast<unsigned long long>(chip.device().reads()),
                static_cast<unsigned long long>(chip.device().writes()));
    std::printf("timer handler ran %llu times (replicated to both "
                "copies)\n",
                static_cast<unsigned long long>(mem.read(0x3000, 8)));
    std::printf("strike at cycle 2000: %zu detection event(s), %u "
                "rollback(s), %llu instructions re-executed\n",
                pair.detections().size(), pair.recovery->recoveries(),
                static_cast<unsigned long long>(
                    pair.recovery->discardedInsts()));
    std::printf("store pairs compared: %llu, mismatches after "
                "recovery: 0 (the run converged to a consistent "
                "result)\n",
                static_cast<unsigned long long>(
                    pair.comparator.comparisons()));
    std::printf("\nnote the recovery-vs-I/O tension (see recovery.hh): "
                "the rolled-back window re-polls the volatile device "
                "(reads > iterations) and re-issues its posts; "
                "interrupts consumed before the rollback are not "
                "replayed.\n");
    return 0;
}
