/**
 * @file
 * Fault-injection walkthrough: inject a cosmic-ray-style transient bit
 * flip into one redundant copy of a running program and watch the SRT
 * output comparison catch it; then show the two coverage subtleties the
 * paper highlights — ECC on the LVQ, and preferential space redundancy
 * against permanent functional-unit faults.
 */

#include <cstdio>
#include <cstring>

#include "sim/simulator.hh"

using namespace rmt;

namespace
{

const char *
kindName(DetectionKind kind)
{
    switch (kind) {
      case DetectionKind::StoreMismatch: return "store mismatch";
      case DetectionKind::LvqAddrMismatch: return "LVQ address mismatch";
      case DetectionKind::ControlDivergence: return "control divergence";
    }
    return "?";
}

SimOptions
options()
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = 12000;
    return o;
}

} // namespace

int
main()
{
    // --- 1. A transient strike on an architectural register ---------
    {
        Simulation sim({"compress"}, options());
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientReg;
        f.when = 3000;          // mid-run
        f.core = 0;
        f.tid = 0;              // the leading copy
        f.reg = intReg(3);      // compress's hash-table base pointer
        f.bit = 5;
        sim.faultInjector().schedule(f);

        sim.run();
        const auto &events = sim.chip().redundancy().pair(0).detections();
        std::printf("1. transient bit flip in the leading copy @3000:\n");
        if (events.empty()) {
            std::printf("   NOT DETECTED (fault was architecturally "
                        "dead)\n");
        } else {
            std::printf("   detected at cycle %llu via %s "
                        "(latency %llu cycles)\n",
                        static_cast<unsigned long long>(
                            events.front().cycle),
                        kindName(events.front().kind),
                        static_cast<unsigned long long>(
                            events.front().cycle - 3000));
        }
    }

    // --- 2. A strike on the LVQ: ECC matters -----------------------
    for (bool ecc : {true, false}) {
        SimOptions o = options();
        o.lvq_ecc = ecc;
        Simulation sim({"gcc"}, o);
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientLvq;
        f.when = 2000;
        f.core = 0;
        f.tid = 0;
        sim.faultInjector().schedule(f);
        sim.run();
        const auto &pair = sim.chip().redundancy().pair(0);
        std::printf("2. LVQ strike with ECC %s: %s\n",
                    ecc ? "on " : "off",
                    ecc ? (pair.lvq.eccCorrections()
                               ? "corrected by ECC, no effect"
                               : "no entry resident")
                        : (pair.faultDetected()
                               ? "corrupted the trailing copy -> "
                                 "detected downstream"
                               : "benign"));
    }

    // --- 2b. Detect AND recover: verified checkpointing -------------
    {
        SimOptions o = options();
        o.recovery = true;
        o.recovery_params.interval_insts = 1000;
        Simulation sim({"compress"}, o);
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientReg;
        f.when = 4000;
        f.core = 0;
        f.tid = 0;
        f.reg = intReg(3);
        f.bit = 5;
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        const auto &rec = *sim.chip().redundancy().pair(0).recovery;
        std::printf("2b. same strike with recovery on: %u rollback(s), "
                    "%llu instructions re-executed, run %s\n",
                    rec.recoveries(),
                    static_cast<unsigned long long>(rec.discardedInsts()),
                    r.completed ? "completed cleanly" : "DID NOT finish");
    }

    // --- 3. A permanent stuck-at fault in an integer ALU ------------
    for (bool psr : {true, false}) {
        SimOptions o = options();
        o.preferential_space_redundancy = psr;
        Simulation sim({"applu"}, o);
        FaultRecord f;
        f.kind = FaultRecord::Kind::PermanentFu;
        f.when = 500;
        f.core = 0;
        f.fuIndex = 0;          // integer ALU 0 in the upper IQ half
        f.mask = 1ull << 2;
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        std::printf("3. permanent ALU fault with PSR %s: %s\n",
                    psr ? "on " : "off",
                    r.detections
                        ? "detected (copies used different units)"
                        : "NOT detected — both copies used the broken "
                          "unit (coverage hole PSR closes)");
    }
    return 0;
}
