/**
 * @file
 * The paper's dual-processor story in one program: run a multithreaded
 * workload on (a) two lockstepped cores behind an 8-cycle checker and
 * (b) a chip-level redundantly threaded (CRT) device that cross-couples
 * leading and trailing threads across the two cores, and compare.
 */

#include <cstdio>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

using namespace rmt;

int
main()
{
    SimOptions opts;
    opts.warmup_insts = 10000;
    opts.measure_insts = 30000;
    BaselineCache baseline(opts);

    const std::vector<std::string> mix{"gcc", "go", "fpppp", "swim"};

    std::printf("workload mix: gcc + go + fpppp + swim "
                "(4 logical threads, 8 redundant contexts)\n\n");

    // Lockstep: both cores run all four programs in cycle lockstep;
    // every off-chip signal crosses the central checker.
    opts.mode = SimMode::Lockstep;
    opts.checker_penalty = 8;
    const RunResult lock = runSimulation(mix, opts);
    const double lock_eff = baseline.efficiency(lock);
    std::printf("Lock8 (8-cycle checker): mean SMT-efficiency %.3f\n",
                lock_eff);
    for (const auto &t : lock.threads)
        std::printf("   %-8s IPC %.3f\n", t.workload.c_str(), t.ipc);

    // CRT: program i leads on core i%2 and trails on the other core,
    // so each core pairs a resource-hungry leading thread with a cheap,
    // never-misspeculating trailing thread.
    opts.mode = SimMode::Crt;
    Simulation crt_sim(mix, opts);
    const RunResult crt = crt_sim.run();
    const double crt_eff = baseline.efficiency(crt);
    std::printf("\nCRT (cross-coupled cores): mean SMT-efficiency %.3f\n",
                crt_eff);
    for (unsigned i = 0; i < mix.size(); ++i) {
        const auto &pl = crt_sim.placement(i);
        std::printf("   %-8s IPC %.3f   (leads core %u, trails core %u)\n",
                    crt.threads[i].workload.c_str(), crt.threads[i].ipc,
                    pl.lead_core, pl.trail_core);
    }

    std::printf("\nCRT / Lock8 = %.2f   (paper: CRT wins by 13%% on "
                "average on multithreaded workloads, max 22%%)\n",
                crt_eff / lock_eff);
    std::printf("store pairs compared under CRT: %llu, mismatches: %llu\n",
                static_cast<unsigned long long>(crt.store_comparisons),
                static_cast<unsigned long long>(crt.store_mismatches));
    return 0;
}
