/**
 * @file
 * Multiprogrammed SRT: two logical programs, each split into a leading
 * and a trailing redundant thread, filling all four hardware contexts
 * of one SMT core (paper Section 7.1's two-logical-thread runs) — plus
 * the per-thread store-queue optimisation.
 */

#include <cstdio>

#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace rmt;

int
main()
{
    SimOptions opts;
    opts.warmup_insts = 10000;
    opts.measure_insts = 30000;
    BaselineCache baseline(opts);

    std::printf("%-14s %10s %10s %10s\n", "mix", "base2thr", "SRT",
                "SRT+ptsq");
    for (const auto &mix : twoProgramMixes()) {
        // The same two programs as plain SMT threads (no redundancy).
        opts.mode = SimMode::Base;
        opts.per_thread_store_queues = false;
        const double base = baseline.efficiency(runSimulation(mix, opts));

        // As two redundant pairs on one core (4 hardware threads).
        opts.mode = SimMode::Srt;
        const double srt = baseline.efficiency(runSimulation(mix, opts));

        opts.per_thread_store_queues = true;
        const double ptsq = baseline.efficiency(runSimulation(mix, opts));
        opts.per_thread_store_queues = false;

        std::printf("%-14s %10.3f %10.3f %10.3f\n",
                    (mix[0] + "+" + mix[1]).c_str(), base, srt, ptsq);
    }
    std::printf("\nSMT-efficiency: per-thread IPC / single-thread IPC, "
                "averaged (Snavely-Tullsen weighted speedup).\n"
                "The fault-detection price is the gap between the "
                "base column and the SRT columns.\n");
    return 0;
}
