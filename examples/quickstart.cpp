/**
 * @file
 * Quickstart: build a tiny program, run it on the base SMT core, then
 * run it under SRT (leading + trailing redundant threads) and print the
 * slowdown — the paper's headline trade-off in a dozen lines.
 */

#include <cstdio>

#include "sim/simulator.hh"

int
main()
{
    using namespace rmt;

    // 1. Pick a workload (one of the 18 SPEC CPU95-like kernels).
    const std::string workload = "gcc";

    SimOptions opts;
    opts.warmup_insts = 1000;
    opts.measure_insts = 10000;

    // 2. Run it alone on the base processor.
    opts.mode = SimMode::Base;
    const RunResult base = runSimulation({workload}, opts);
    std::printf("base:  %-8s IPC %.3f (%llu insts, %llu cycles)\n",
                workload.c_str(), base.threads[0].ipc,
                static_cast<unsigned long long>(base.threads[0].committed),
                static_cast<unsigned long long>(base.threads[0].cycles));

    // 3. Run it under SRT: two redundant copies, LVQ + LPQ + store
    //    comparator, fault detection on every cacheable store.
    opts.mode = SimMode::Srt;
    const RunResult srt = runSimulation({workload}, opts);
    std::printf("SRT:   %-8s IPC %.3f, %llu store pairs compared, "
                "%llu mismatches\n",
                workload.c_str(), srt.threads[0].ipc,
                static_cast<unsigned long long>(srt.store_comparisons),
                static_cast<unsigned long long>(srt.store_mismatches));

    std::printf("SRT slowdown vs base: %.1f%%\n",
                100.0 * (1.0 - srt.threads[0].ipc / base.threads[0].ipc));
    return 0;
}
